"""run_all: id validation, deterministic seeding, process-pool fan-out."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentResult, combine_markdown
from repro.experiments.registry import (
    experiment_seed,
    run_all,
    validate_experiment_ids,
)

SMALL_IDS = ["fig04", "fig05"]


def test_validate_rejects_all_unknown_ids_at_once():
    with pytest.raises(ExperimentError) as excinfo:
        validate_experiment_ids(["fig05", "nope", "also-nope"])
    message = str(excinfo.value)
    assert "nope" in message and "also-nope" in message
    assert "fig05" in message  # the available-ids listing


def test_run_all_validates_before_running():
    with pytest.raises(ExperimentError):
        run_all(only=["fig05", "unknown-id"])


def test_run_all_rejects_bad_jobs():
    with pytest.raises(ExperimentError):
        run_all(only=SMALL_IDS, jobs=0)


def test_experiment_seed_is_stable_and_distinct():
    assert experiment_seed("fig05") == experiment_seed("fig05")
    assert experiment_seed("fig05") != experiment_seed("fig04")
    assert 0 <= experiment_seed("fig05") < 2**32


def test_parallel_matches_serial_byte_for_byte():
    serial = run_all(only=SMALL_IDS, quick=True, jobs=1)
    parallel = run_all(only=SMALL_IDS, quick=True, jobs=2)
    assert [r.experiment_id for r in parallel] == [
        r.experiment_id for r in serial
    ]
    assert combine_markdown(parallel) == combine_markdown(serial)


def test_results_returned_in_registry_order():
    results = run_all(only=["fig05", "fig04"], quick=True, jobs=2)
    # `only` order is preserved, not re-sorted.
    assert [r.experiment_id for r in results] == ["fig05", "fig04"]
    assert all(isinstance(r, ExperimentResult) for r in results)


class TestColumnAccessor:
    def test_missing_cells_become_none(self):
        result = ExperimentResult(
            experiment_id="x", title="t",
            rows=[{"a": 1, "b": 2}, {"a": 3}],
        )
        assert result.column("b") == [2, None]

    def test_unknown_column_lists_available(self):
        result = ExperimentResult(
            experiment_id="x", title="t", rows=[{"a": 1, "b": 2}],
        )
        with pytest.raises(ExperimentError) as excinfo:
            result.column("c")
        assert "available: a, b" in str(excinfo.value)


class TestSweepScheduling:
    """LPT ordering, wall-time persistence, and the scheduled pool."""

    def test_lpt_orders_known_longest_first(self, monkeypatch, tmp_path):
        from repro.experiments import sweep

        path = tmp_path / "wall_times.json"
        monkeypatch.setenv(sweep.ENV_SWEEP_TIMES, str(path))
        monkeypatch.setattr(sweep, "_session_times", {})
        sweep.record_wall_times({
            "quick:a": 1.0, "quick:b": 9.0, "quick:c": 4.0,
        })
        order = sweep.lpt_order(["a", "b", "c"], quick=True)
        assert order == [1, 2, 0]  # b (9s), c (4s), a (1s)

    def test_unknown_experiments_schedule_first(self, monkeypatch, tmp_path):
        from repro.experiments import sweep

        monkeypatch.setenv(
            sweep.ENV_SWEEP_TIMES, str(tmp_path / "wall_times.json"),
        )
        monkeypatch.setattr(sweep, "_session_times", {})
        sweep.record_wall_times({"quick:a": 1.0, "quick:c": 4.0})
        order = sweep.lpt_order(["a", "mystery", "c"], quick=True)
        # The unknown job could be the long pole: it must start first.
        assert order == [1, 2, 0]

    def test_wall_times_persist_and_merge(self, monkeypatch, tmp_path):
        from repro.experiments import sweep

        path = tmp_path / "wall_times.json"
        monkeypatch.setenv(sweep.ENV_SWEEP_TIMES, str(path))
        monkeypatch.setattr(sweep, "_session_times", {})
        sweep.record_wall_times({"quick:a": 1.0})
        sweep.record_wall_times({"full:a": 7.0})
        monkeypatch.setattr(sweep, "_session_times", {})  # fresh process
        times = sweep.load_wall_times()
        assert times["quick:a"] == 1.0
        assert times["full:a"] == 7.0
        # Seeded defaults (unmeasured srv_* costs) ride along until a
        # real measurement overrides them.
        for key, seeded in sweep.SEED_WALL_TIMES.items():
            assert times[key] == seeded

    def test_quick_and_full_times_are_distinct_keys(self):
        from repro.experiments import sweep

        assert (
            sweep.wall_time_key("fig04", True)
            != sweep.wall_time_key("fig04", False)
        )

    def test_run_all_records_serial_durations(self, monkeypatch, tmp_path):
        from repro.experiments import sweep

        monkeypatch.setenv(
            sweep.ENV_SWEEP_TIMES, str(tmp_path / "wall_times.json"),
        )
        monkeypatch.setattr(sweep, "_session_times", {})
        run_all(only=["fig05"], quick=True, jobs=1)
        times = sweep.load_wall_times()
        assert "quick:fig05" in times
        assert times["quick:fig05"] >= 0.0

    def test_scheduled_pool_returns_request_order(self, monkeypatch, tmp_path):
        from repro.experiments import sweep

        monkeypatch.setenv(
            sweep.ENV_SWEEP_TIMES, str(tmp_path / "wall_times.json"),
        )
        # Bias recorded times so LPT submits fig04 before fig05 even
        # though fig05 is requested first: results must still come back
        # in request order.
        monkeypatch.setattr(
            sweep, "_session_times",
            {"quick:fig04": 9.0, "quick:fig05": 0.1},
        )
        results = run_all(only=["fig05", "fig04"], quick=True, jobs=2)
        assert [r.experiment_id for r in results] == ["fig05", "fig04"]

    def test_limit_blas_threads_reports_boolean(self):
        from repro.experiments.sweep import limit_blas_threads

        assert limit_blas_threads(1) in (True, False)
