"""run_all: id validation, deterministic seeding, process-pool fan-out."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentResult, combine_markdown
from repro.experiments.registry import (
    experiment_seed,
    run_all,
    validate_experiment_ids,
)

SMALL_IDS = ["fig04", "fig05"]


def test_validate_rejects_all_unknown_ids_at_once():
    with pytest.raises(ExperimentError) as excinfo:
        validate_experiment_ids(["fig05", "nope", "also-nope"])
    message = str(excinfo.value)
    assert "nope" in message and "also-nope" in message
    assert "fig05" in message  # the available-ids listing


def test_run_all_validates_before_running():
    with pytest.raises(ExperimentError):
        run_all(only=["fig05", "unknown-id"])


def test_run_all_rejects_bad_jobs():
    with pytest.raises(ExperimentError):
        run_all(only=SMALL_IDS, jobs=0)


def test_experiment_seed_is_stable_and_distinct():
    assert experiment_seed("fig05") == experiment_seed("fig05")
    assert experiment_seed("fig05") != experiment_seed("fig04")
    assert 0 <= experiment_seed("fig05") < 2**32


def test_parallel_matches_serial_byte_for_byte():
    serial = run_all(only=SMALL_IDS, quick=True, jobs=1)
    parallel = run_all(only=SMALL_IDS, quick=True, jobs=2)
    assert [r.experiment_id for r in parallel] == [
        r.experiment_id for r in serial
    ]
    assert combine_markdown(parallel) == combine_markdown(serial)


def test_results_returned_in_registry_order():
    results = run_all(only=["fig05", "fig04"], quick=True, jobs=2)
    # `only` order is preserved, not re-sorted.
    assert [r.experiment_id for r in results] == ["fig05", "fig04"]
    assert all(isinstance(r, ExperimentResult) for r in results)


class TestColumnAccessor:
    def test_missing_cells_become_none(self):
        result = ExperimentResult(
            experiment_id="x", title="t",
            rows=[{"a": 1, "b": 2}, {"a": 3}],
        )
        assert result.column("b") == [2, None]

    def test_unknown_column_lists_available(self):
        result = ExperimentResult(
            experiment_id="x", title="t", rows=[{"a": 1, "b": 2}],
        )
        with pytest.raises(ExperimentError) as excinfo:
            result.column("c")
        assert "available: a, b" in str(excinfo.value)
