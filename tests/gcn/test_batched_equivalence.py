"""Replica-batched training vs the serial trainers, bit for bit.

``train_replicas`` stacks R compatible runs into one ``[R, ...]`` tensor
pass; its contract is *exact* equality with training each
:class:`~repro.gcn.batched.ReplicaSpec` on the serial trainers — losses,
train/test metric histories, and eval epochs, not approximately but
bitwise (``==`` on the float lists).  These tests sweep the dimensions a
group may vary in (seed, update plan) and the knobs it must carry
through unchanged (dropout, analog noise, strided eval), plus the
fallback and ordering guarantees and the split-harness batched path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gcn.batched import ReplicaSpec, train_replicas
from repro.gcn.trainer import make_trainer
from repro.graphs.generators import dc_sbm_graph
from repro.mapping.selective import build_update_plan
from repro.runtime import Session


@pytest.fixture(scope="module")
def graph():
    return dc_sbm_graph(
        240, 3, 10.0, random_state=0, feature_dim=12, intra_ratio=0.9,
    )


@pytest.fixture(scope="module")
def plan(graph):
    return build_update_plan(graph, "isu", theta=0.5, minor_period=5)


def _serial(spec: ReplicaSpec):
    trainer = make_trainer(
        spec.graph, spec.task, random_state=spec.random_state,
        hidden_dim=spec.hidden_dim, num_layers=spec.num_layers,
        learning_rate=spec.learning_rate, dropout=spec.dropout,
        test_fraction=spec.resolved_test_fraction(),
        analog_noise_sigma=spec.analog_noise_sigma,
        **({"embedding_dim": spec.embedding_dim}
           if spec.task == "link" else {}),
    )
    return trainer.train(
        epochs=spec.epochs, update_plan=spec.update_plan,
        start_epoch=spec.start_epoch, eval_every=spec.eval_every,
    )


def _assert_identical(specs, session=None, min_batch=1):
    batched = train_replicas(
        specs, session=session or Session(), min_batch=min_batch,
    )
    for spec, fast in zip(specs, batched):
        ref = _serial(spec)
        assert fast.losses == ref.losses
        assert fast.train_metrics == ref.train_metrics
        assert fast.test_metrics == ref.test_metrics
        assert fast.eval_epochs == ref.eval_epochs


@pytest.mark.parametrize("task", ["node", "link"])
def test_seed_varied_fleet(graph, task):
    _assert_identical([
        ReplicaSpec(graph=graph, task=task, epochs=5, random_state=s)
        for s in range(4)
    ])


@pytest.mark.parametrize("task", ["node", "link"])
def test_shared_seed_mixed_plans(graph, plan, task):
    # The tab05 shape: one data seed, vanilla vs ISU update plans.
    _assert_identical([
        ReplicaSpec(
            graph=graph, task=task, epochs=5, random_state=0,
            update_plan=p,
        )
        for p in (None, plan, None, plan)
    ])


@pytest.mark.parametrize("task", ["node", "link"])
def test_mixed_seeds_and_plans(graph, plan, task):
    _assert_identical([
        ReplicaSpec(
            graph=graph, task=task, epochs=4, random_state=s,
            update_plan=p,
        )
        for s, p in ((0, None), (1, plan), (2, None), (3, plan))
    ])


@pytest.mark.parametrize("task", ["node", "link"])
def test_dropout_and_analog_noise(graph, task):
    # Per-epoch model randomness must come off the same stream draws.
    _assert_identical([
        ReplicaSpec(
            graph=graph, task=task, epochs=4, random_state=s,
            dropout=0.3, analog_noise_sigma=0.02,
        )
        for s in range(3)
    ])


@pytest.mark.parametrize("task", ["node", "link"])
def test_strided_eval(graph, task):
    _assert_identical([
        ReplicaSpec(
            graph=graph, task=task, epochs=7, random_state=s,
            eval_every=3,
        )
        for s in range(3)
    ])


def test_singleton_falls_back_to_serial(graph):
    spec = ReplicaSpec(graph=graph, task="node", epochs=4, random_state=7)
    [fast] = train_replicas([spec], session=Session(), min_batch=2)
    ref = _serial(spec)
    assert fast.losses == ref.losses
    assert fast.test_metrics == ref.test_metrics


def test_incompatible_groups_keep_input_order(graph):
    # Epoch counts differ -> two groups (one a serial-fallback
    # singleton); results must still come back in input order.
    specs = [
        ReplicaSpec(graph=graph, task="node", epochs=4, random_state=0),
        ReplicaSpec(graph=graph, task="node", epochs=6, random_state=1),
        ReplicaSpec(graph=graph, task="node", epochs=4, random_state=2),
    ]
    _assert_identical(specs, min_batch=2)


def test_unknown_task_rejected(graph):
    from repro.errors import TrainingError

    with pytest.raises(TrainingError):
        train_replicas([
            ReplicaSpec(graph=graph, task="edge", epochs=2),
        ])


# ----------------------------------------------------------------------
# Split-harness batched path (the ablation loop)
# ----------------------------------------------------------------------
def _layer_dims(graph):
    fd = graph.features.shape[1]
    classes = int(graph.labels.max()) + 1
    return [(fd, 24), (24, classes)]


def _fresh_models(graph, n):
    from repro.gcn.model import GCN

    return [GCN(_layer_dims(graph), random_state=s) for s in range(n)]


def _serial_split(graph, model, epochs, seed, plan=None, delay=None,
                  use_store=False):
    # A single-model call falls back to the harness's serial
    # ``train_with_split`` loop — the exact reference semantics
    # (closure shapes included) the batched path must reproduce.
    from repro.experiments.harness import train_with_split_replicas

    [best] = train_with_split_replicas(
        [model], graph, epochs, seed,
        update_plans=[plan] if use_store or plan is not None else None,
        use_store=use_store,
        param_delays=None if delay is None else [delay],
    )
    return best


def test_split_replicas_match_serial_loop(graph):
    from repro.experiments.harness import train_with_split_replicas

    batched = train_with_split_replicas(
        _fresh_models(graph, 4), graph, epochs=5, seed=0,
    )
    serial = [
        _serial_split(graph, model, epochs=5, seed=0)
        for model in _fresh_models(graph, 4)
    ]
    assert batched == serial


def test_split_replicas_with_plans_match_store_loop(graph, plan):
    from repro.experiments.harness import train_with_split_replicas

    plans = [None, plan, None, plan]
    batched = train_with_split_replicas(
        _fresh_models(graph, 4), graph, epochs=5, seed=0,
        update_plans=plans, use_store=True,
    )
    serial = [
        _serial_split(graph, model, epochs=5, seed=0, plan=p,
                      use_store=True)
        for model, p in zip(_fresh_models(graph, 4), plans)
    ]
    assert batched == serial


def test_split_replicas_with_delays_match_stale_loop(graph):
    from repro.experiments.harness import train_with_split_replicas

    delays = [0, 1, 2, 0]
    batched = train_with_split_replicas(
        _fresh_models(graph, 4), graph, epochs=6, seed=0,
        param_delays=delays,
    )
    serial = [
        _serial_split(graph, model, epochs=6, seed=0, delay=d)
        for model, d in zip(_fresh_models(graph, 4), delays)
    ]
    assert batched == serial


def test_split_replicas_sage_falls_back(graph):
    # A non-GCN family is not batchable; the harness must still return
    # the serial results (one per model, input order).
    from repro.experiments.harness import train_with_split_replicas
    from repro.gcn.sage import GraphSAGE

    dims = _layer_dims(graph)
    batched = train_with_split_replicas(
        [GraphSAGE(dims, random_state=s) for s in range(2)],
        graph, epochs=4, seed=0,
    )
    serial = [
        _serial_split(graph, GraphSAGE(dims, random_state=s),
                      epochs=4, seed=0)
        for s in range(2)
    ]
    assert batched == serial
