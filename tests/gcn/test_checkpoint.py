"""Model checkpoint save/load/restore."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.gcn.checkpoint import (
    load_checkpoint,
    restore_model,
    save_checkpoint,
)
from repro.gcn.model import GCN
from repro.gcn.sage import GraphSAGE


def test_round_trip_gcn(tmp_path, tiny_graph):
    model = GCN([(4, 6), (6, 2)], random_state=0)
    path = tmp_path / "gcn.npz"
    save_checkpoint(model.params, model.layer_dims, path)

    fresh = GCN([(4, 6), (6, 2)], random_state=99)
    before, _ = fresh.forward(tiny_graph, tiny_graph.features)
    restore_model(fresh, path)
    after, _ = fresh.forward(tiny_graph, tiny_graph.features)
    reference, _ = model.forward(tiny_graph, tiny_graph.features)
    assert not np.allclose(before, reference)
    np.testing.assert_allclose(after, reference, rtol=1e-6)


def test_round_trip_sage(tmp_path, tiny_graph):
    model = GraphSAGE([(4, 3)], random_state=1)
    path = tmp_path / "sage.npz"
    save_checkpoint(model.params, model.layer_dims, path)
    fresh = GraphSAGE([(4, 3)], random_state=7)
    restore_model(fresh, path)
    for key in model.params:
        np.testing.assert_allclose(fresh.params[key], model.params[key])


def test_dims_mismatch_rejected(tmp_path):
    model = GCN([(4, 6)], random_state=0)
    path = tmp_path / "gcn.npz"
    save_checkpoint(model.params, model.layer_dims, path)
    wrong = GCN([(4, 8)], random_state=0)
    with pytest.raises(TrainingError):
        restore_model(wrong, path)


def test_missing_param_rejected(tmp_path):
    model = GCN([(4, 6)], random_state=0)
    path = tmp_path / "partial.npz"
    save_checkpoint({}, model.layer_dims, path)
    with pytest.raises(TrainingError):
        restore_model(model, path)


def test_reserved_names_rejected(tmp_path):
    with pytest.raises(TrainingError):
        save_checkpoint(
            {"layer_dims": np.zeros(1)}, [(2, 2)], tmp_path / "x.npz",
        )


def test_load_validation(tmp_path):
    with pytest.raises(TrainingError):
        load_checkpoint(tmp_path / "absent.npz")
    bad = tmp_path / "bad.npz"
    np.savez_compressed(bad, something=np.zeros(1))
    with pytest.raises(TrainingError):
        load_checkpoint(bad)
