"""Losses and metrics, with finite-difference gradient checks."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.gcn.losses import (
    accuracy,
    cross_entropy_loss,
    link_accuracy,
    link_bce_loss,
    link_logits,
    sigmoid,
    softmax,
)


def test_softmax_rows_sum_to_one():
    logits = np.random.default_rng(0).normal(size=(5, 4)) * 50
    probs = softmax(logits)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-6)
    assert np.all(probs >= 0)


def test_cross_entropy_perfect_prediction():
    logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
    labels = np.array([0, 1])
    loss, grad = cross_entropy_loss(logits, labels)
    assert loss < 1e-6
    np.testing.assert_allclose(grad, 0.0, atol=1e-6)


def test_cross_entropy_gradient_finite_difference():
    rng = np.random.default_rng(1)
    logits = rng.normal(size=(4, 3))
    labels = np.array([0, 2, 1, 1])
    _, grad = cross_entropy_loss(logits, labels)
    eps = 1e-5
    for i in range(4):
        for j in range(3):
            bumped = logits.copy()
            bumped[i, j] += eps
            up, _ = cross_entropy_loss(bumped, labels)
            bumped[i, j] -= 2 * eps
            down, _ = cross_entropy_loss(bumped, labels)
            numeric = (up - down) / (2 * eps)
            assert grad[i, j] == pytest.approx(numeric, abs=1e-4)


def test_cross_entropy_validation():
    with pytest.raises(TrainingError):
        cross_entropy_loss(np.zeros((2, 3)), np.array([0, 5]))
    with pytest.raises(TrainingError):
        cross_entropy_loss(np.zeros((0, 3)), np.zeros(0, dtype=int))


def test_accuracy():
    logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
    assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
    with pytest.raises(TrainingError):
        accuracy(np.zeros((0, 2)), np.zeros(0, dtype=int))


def test_sigmoid_stability():
    x = np.array([-1000.0, 0.0, 1000.0])
    out = sigmoid(x)
    np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-9)


def test_link_logits():
    emb = np.array([[1.0, 0.0], [0.0, 2.0], [3.0, 1.0]])
    edges = np.array([[0, 2], [1, 2]])
    np.testing.assert_allclose(link_logits(emb, edges), [3.0, 2.0])
    with pytest.raises(TrainingError):
        link_logits(emb, np.array([0, 1]))


def test_link_bce_gradient_finite_difference():
    rng = np.random.default_rng(2)
    emb = rng.normal(size=(5, 3)).astype(np.float64)
    pos = np.array([[0, 1], [2, 3]])
    neg = np.array([[0, 4], [1, 3]])
    _, grad = link_bce_loss(emb, pos, neg)
    eps = 1e-5
    for i in range(5):
        for j in range(3):
            bumped = emb.copy()
            bumped[i, j] += eps
            up, _ = link_bce_loss(bumped, pos, neg)
            bumped[i, j] -= 2 * eps
            down, _ = link_bce_loss(bumped, pos, neg)
            numeric = (up - down) / (2 * eps)
            assert grad[i, j] == pytest.approx(numeric, abs=1e-3)


def test_link_bce_validation():
    with pytest.raises(TrainingError):
        link_bce_loss(np.zeros((3, 2)), np.zeros((0, 2)), np.zeros((0, 2)))


def test_link_accuracy_perfect():
    emb = np.array([[10.0, 0.0], [10.0, 0.0], [-10.0, 0.0]])
    pos = np.array([[0, 1]])   # score 100 > 0
    neg = np.array([[0, 2]])   # score -100 <= 0
    assert link_accuracy(emb, pos, neg) == 1.0
    with pytest.raises(TrainingError):
        link_accuracy(emb, np.zeros((0, 2), dtype=int), np.zeros((0, 2), dtype=int))
