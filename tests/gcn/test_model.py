"""GCN forward/backward, staleness store, gradient checks."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.gcn.losses import cross_entropy_loss
from repro.gcn.model import GCN, StaleFeatureStore


def test_forward_shapes(small_graph):
    model = GCN([(16, 8), (8, 4)], random_state=0)
    out, cache = model.forward(small_graph, small_graph.features)
    assert out.shape == (small_graph.num_vertices, 4)
    assert len(cache["inputs"]) == 2


def test_layer_dims_must_chain():
    with pytest.raises(TrainingError):
        GCN([(4, 8), (9, 2)])
    with pytest.raises(TrainingError):
        GCN([])
    with pytest.raises(TrainingError):
        GCN([(4, 4)], dropout=1.0)


def test_feature_shape_checked(small_graph):
    model = GCN([(3, 2)])
    with pytest.raises(TrainingError):
        model.forward(small_graph, small_graph.features)  # dim 16 != 3


def test_backward_gradcheck(tiny_graph):
    model = GCN([(4, 5), (5, 2)], random_state=1)
    features = tiny_graph.features
    labels = tiny_graph.labels

    def loss_value():
        logits, _ = model.forward(tiny_graph, features)
        loss, _ = cross_entropy_loss(logits, labels)
        return loss

    logits, cache = model.forward(tiny_graph, features)
    _, grad_logits = cross_entropy_loss(logits, labels)
    grads = model.backward(tiny_graph, cache, grad_logits)

    eps = 1e-3
    rng = np.random.default_rng(0)
    for key in grads:
        w = model.params[key]
        for _ in range(6):
            i = rng.integers(0, w.shape[0])
            j = rng.integers(0, w.shape[1])
            orig = w[i, j]
            w[i, j] = orig + eps
            up = loss_value()
            w[i, j] = orig - eps
            down = loss_value()
            w[i, j] = orig
            numeric = (up - down) / (2 * eps)
            assert grads[key][i, j] == pytest.approx(numeric, abs=2e-2)


def test_dropout_only_in_training(small_graph):
    model = GCN([(16, 8), (8, 4)], dropout=0.5, random_state=0)
    eval_a, _ = model.forward(small_graph, small_graph.features, training=False)
    eval_b, _ = model.forward(small_graph, small_graph.features, training=False)
    np.testing.assert_allclose(eval_a, eval_b)
    train_a, _ = model.forward(small_graph, small_graph.features, training=True)
    train_b, _ = model.forward(small_graph, small_graph.features, training=True)
    assert not np.allclose(train_a, train_b)


def test_stale_store_first_refresh_is_full():
    store = StaleFeatureStore(1)
    assert not store.is_initialised(0)
    values = np.arange(12, dtype=np.float32).reshape(4, 3)
    store.refresh(0, values, vertices=np.array([0]))  # forced full
    np.testing.assert_allclose(store.read(0), values)


def test_stale_store_partial_refresh():
    store = StaleFeatureStore(1)
    first = np.zeros((4, 2), dtype=np.float32)
    store.refresh(0, first)
    second = np.ones((4, 2), dtype=np.float32)
    store.refresh(0, second, vertices=np.array([1, 3]))
    resident = store.read(0)
    np.testing.assert_allclose(resident[[1, 3]], 1.0)
    np.testing.assert_allclose(resident[[0, 2]], 0.0)


def test_stale_store_validation():
    store = StaleFeatureStore(2)
    with pytest.raises(TrainingError):
        store.read(0)
    store.refresh(0, np.zeros((2, 2), dtype=np.float32))
    with pytest.raises(TrainingError):
        store.refresh(0, np.zeros((3, 2), dtype=np.float32), np.array([0]))
    with pytest.raises(TrainingError):
        StaleFeatureStore(0)


def test_staleness_changes_forward(small_graph):
    model = GCN([(16, 8)], random_state=0)
    features = small_graph.features
    store = StaleFeatureStore(1)
    # Initial full refresh.
    out_full, _ = model.forward(small_graph, features, store=store,
                                updated=None)
    # Perturb the weights, then refresh nothing: output must be stale.
    model.params["W0"] += 1.0
    out_stale, _ = model.forward(
        small_graph, features, store=store,
        updated=np.array([], dtype=np.int64),
    )
    np.testing.assert_allclose(out_stale, out_full, rtol=1e-5)
    # Full refresh picks up the new weights.
    out_fresh, _ = model.forward(small_graph, features, store=store,
                                 updated=None)
    assert not np.allclose(out_fresh, out_full)


def test_no_gradient_through_stale_rows(tiny_graph):
    model = GCN([(4, 2)], random_state=0)
    store = StaleFeatureStore(1)
    model.forward(tiny_graph, tiny_graph.features, store=store, updated=None)
    updated = np.array([0, 1], dtype=np.int64)
    logits, cache = model.forward(
        tiny_graph, tiny_graph.features, store=store, updated=updated,
    )
    grads = model.backward(tiny_graph, cache, np.ones_like(logits))
    # Compare with the gradient restricted to fresh rows computed manually.
    grad_combined = tiny_graph.normalized_adjacency_matmul(
        np.ones_like(logits),
    )
    mask = np.zeros(tiny_graph.num_vertices, dtype=bool)
    mask[updated] = True
    expected = tiny_graph.features.T @ (grad_combined * mask[:, None])
    np.testing.assert_allclose(grads["W0"], expected, rtol=1e-5)


def test_analog_noise_validation_and_effect(small_graph):
    with pytest.raises(TrainingError):
        GCN([(16, 4)], analog_noise_sigma=-0.1)
    clean = GCN([(16, 4)], random_state=0)
    noisy = GCN([(16, 4)], random_state=0, analog_noise_sigma=0.05)
    out_clean, _ = clean.forward(small_graph, small_graph.features)
    out_noisy, _ = noisy.forward(small_graph, small_graph.features)
    # Same weights (same seed), different outputs due to analog noise.
    assert not np.allclose(out_clean, out_noisy)
