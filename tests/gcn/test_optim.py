"""Optimisers: SGD and Adam converge on a quadratic."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.gcn.optim import SGD, Adam


def quadratic_grad(params):
    # f(w) = ||w - 3||^2 -> grad = 2 (w - 3).
    return {"w": 2.0 * (params["w"] - 3.0)}


@pytest.mark.parametrize("optimizer", [
    SGD(learning_rate=0.1),
    SGD(learning_rate=0.05, momentum=0.9),
    Adam(learning_rate=0.3),
])
def test_converges_to_minimum(optimizer):
    params = {"w": np.array([0.0, 10.0])}
    for _ in range(200):
        optimizer.step(params, quadratic_grad(params))
    np.testing.assert_allclose(params["w"], [3.0, 3.0], atol=0.05)


def test_updates_in_place():
    params = {"w": np.zeros(2)}
    ref = params["w"]
    Adam(learning_rate=0.1).step(params, {"w": np.ones(2)})
    assert params["w"] is ref
    assert not np.allclose(ref, 0.0)


def test_unknown_gradient_key_raises():
    with pytest.raises(TrainingError):
        SGD().step({"w": np.zeros(2)}, {"v": np.zeros(2)})
    with pytest.raises(TrainingError):
        Adam().step({"w": np.zeros(2)}, {"v": np.zeros(2)})


def test_hyperparameter_validation():
    with pytest.raises(TrainingError):
        SGD(learning_rate=0.0)
    with pytest.raises(TrainingError):
        SGD(momentum=1.0)
    with pytest.raises(TrainingError):
        Adam(learning_rate=-1.0)
    with pytest.raises(TrainingError):
        Adam(beta1=1.0)


def test_adam_bias_correction_first_step():
    # After one step from zero moments, Adam moves by ~lr regardless of
    # gradient scale.
    params = {"w": np.array([0.0])}
    Adam(learning_rate=0.1).step(params, {"w": np.array([1e-4])})
    assert abs(params["w"][0] + 0.1) < 0.01
