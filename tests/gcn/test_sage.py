"""GraphSAGE model: forward semantics, gradcheck, staleness."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.gcn.losses import cross_entropy_loss
from repro.gcn.model import StaleFeatureStore
from repro.gcn.sage import GraphSAGE


def test_forward_shapes(small_graph):
    model = GraphSAGE([(16, 8), (8, 4)], random_state=0)
    out, cache = model.forward(small_graph, small_graph.features)
    assert out.shape == (small_graph.num_vertices, 4)
    assert len(cache["inputs"]) == 2


def test_mean_aggregation_matches_manual(tiny_graph):
    model = GraphSAGE([(4, 3)], random_state=0)
    out, _ = model.forward(tiny_graph, tiny_graph.features)
    x = tiny_graph.features
    mean_agg = tiny_graph.mean_adjacency_matmul(x)
    expected = x @ model.params["W0_self"] + mean_agg @ model.params["W0_neigh"]
    np.testing.assert_allclose(out, expected, rtol=1e-5)


def test_dims_validation():
    with pytest.raises(TrainingError):
        GraphSAGE([(4, 8), (9, 2)])
    with pytest.raises(TrainingError):
        GraphSAGE([])
    with pytest.raises(TrainingError):
        GraphSAGE([(4, 4)], dropout=1.0)


def test_backward_gradcheck(tiny_graph):
    model = GraphSAGE([(4, 5), (5, 2)], random_state=1)
    features = tiny_graph.features
    labels = tiny_graph.labels

    def loss_value():
        logits, _ = model.forward(tiny_graph, features)
        loss, _ = cross_entropy_loss(logits, labels)
        return loss

    logits, cache = model.forward(tiny_graph, features)
    _, grad_logits = cross_entropy_loss(logits, labels)
    grads = model.backward(tiny_graph, cache, grad_logits)

    eps = 1e-3
    rng = np.random.default_rng(0)
    for key in grads:
        w = model.params[key]
        for _ in range(4):
            i = rng.integers(0, w.shape[0])
            j = rng.integers(0, w.shape[1])
            orig = w[i, j]
            w[i, j] = orig + eps
            up = loss_value()
            w[i, j] = orig - eps
            down = loss_value()
            w[i, j] = orig
            numeric = (up - down) / (2 * eps)
            assert grads[key][i, j] == pytest.approx(numeric, abs=2e-2)


def test_staleness_freezes_aggregation(small_graph):
    model = GraphSAGE([(16, 8)], random_state=0)
    features = small_graph.features
    store = StaleFeatureStore(1)
    out_full, _ = model.forward(
        small_graph, features, store=store, updated=None,
    )
    # With nothing refreshed, the aggregation path is frozen; only the
    # self path sees weight changes.
    model.params["W0_neigh"] += 1.0
    out_stale, _ = model.forward(
        small_graph, features, store=store,
        updated=np.array([], dtype=np.int64),
    )
    # Self path unchanged, neigh weights changed but resident input is the
    # same -> outputs move by agg @ delta, which is nonzero; the point of
    # the store is the *resident features* stay frozen:
    resident = store.read(0)
    np.testing.assert_allclose(resident, features, rtol=1e-6)
    assert not np.allclose(out_stale, out_full)


def test_sage_learns_on_communities():
    from repro.graphs.generators import dc_sbm_graph
    from repro.gcn.optim import Adam
    from repro.gcn.losses import accuracy

    graph = dc_sbm_graph(
        200, 3, 10.0, random_state=0, feature_dim=12, intra_ratio=0.9,
    )
    model = GraphSAGE([(12, 16), (16, 3)], random_state=0)
    optimizer = Adam(learning_rate=0.02)
    for _ in range(30):
        logits, cache = model.forward(graph, graph.features, training=True)
        loss, grad = cross_entropy_loss(logits, graph.labels)
        grads = model.backward(graph, cache, grad)
        optimizer.step(model.params, grads)
    logits, _ = model.forward(graph, graph.features)
    assert accuracy(logits, graph.labels) > 0.75


def test_mean_adjacency_matmul(tiny_graph):
    x = np.eye(6, dtype=np.float32)[:, :3]
    mean_agg = tiny_graph.mean_adjacency_matmul(x)
    # Vertex 0 has neighbours 1, 2, 3 -> mean of their rows.
    expected0 = (x[1] + x[2] + x[3]) / 3
    np.testing.assert_allclose(mean_agg[0], expected0, rtol=1e-6)
