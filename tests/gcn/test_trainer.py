"""Training loops: learning signal, ISU staleness, splits."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.gcn.trainer import (
    LinkPredictionTrainer,
    NodeClassificationTrainer,
    make_trainer,
)
from repro.graphs.generators import dc_sbm_graph
from repro.mapping.selective import build_update_plan


@pytest.fixture(scope="module")
def community_graph():
    return dc_sbm_graph(
        240, 3, 10.0, random_state=0, feature_dim=12, intra_ratio=0.9,
    )


def test_node_training_learns(community_graph):
    trainer = NodeClassificationTrainer(
        community_graph, hidden_dim=32, num_layers=2, random_state=0,
    )
    result = trainer.train(epochs=25)
    assert result.best_test_metric > 0.6  # 3 classes, chance = 0.33
    assert result.losses[-1] < result.losses[0]
    assert len(result.test_metrics) == 25


def test_node_training_with_isu_close_to_full(community_graph):
    full = NodeClassificationTrainer(community_graph, random_state=0)
    base = full.train(epochs=20).best_test_metric
    plan = build_update_plan(community_graph, "isu", theta=0.5)
    isu = NodeClassificationTrainer(community_graph, random_state=0)
    with_isu = isu.train(epochs=20, update_plan=plan).best_test_metric
    assert with_isu > base - 0.1


def test_node_trainer_requires_labels(small_graph):
    unlabeled = small_graph.with_features(small_graph.features)
    # small_graph has labels; build one without.
    from repro.graphs.graph import Graph
    g = Graph.from_edges(
        small_graph.num_vertices, small_graph.edge_list(),
        features=small_graph.features,
    )
    with pytest.raises(TrainingError):
        NodeClassificationTrainer(g)


def test_link_training_learns(community_graph):
    trainer = LinkPredictionTrainer(
        community_graph, hidden_dim=24, embedding_dim=16, random_state=0,
    )
    result = trainer.train(epochs=20)
    assert result.best_test_metric > 0.6  # balanced accuracy, chance 0.5


def test_link_split_disjoint(community_graph):
    trainer = LinkPredictionTrainer(community_graph, random_state=0)
    train_set = {tuple(e) for e in trainer.train_pos.tolist()}
    test_set = {tuple(e) for e in trainer.test_pos.tolist()}
    assert not train_set & test_set
    total = community_graph.num_edges
    assert len(train_set) + len(test_set) == total


def test_link_trainer_too_small():
    g = dc_sbm_graph(6, 1, 0.5, random_state=0, feature_dim=4)
    if g.num_edges < 4:
        with pytest.raises(TrainingError):
            LinkPredictionTrainer(g)


def test_training_deterministic(community_graph):
    a = NodeClassificationTrainer(community_graph, random_state=3)
    b = NodeClassificationTrainer(community_graph, random_state=3)
    ra = a.train(epochs=5)
    rb = b.train(epochs=5)
    np.testing.assert_allclose(ra.losses, rb.losses)


def test_make_trainer_dispatch(community_graph):
    assert isinstance(
        make_trainer(community_graph, "node"), NodeClassificationTrainer,
    )
    assert isinstance(
        make_trainer(community_graph, "link"), LinkPredictionTrainer,
    )
    with pytest.raises(TrainingError):
        make_trainer(community_graph, "regression")


def test_result_requires_epochs(community_graph):
    trainer = NodeClassificationTrainer(community_graph, random_state=0)
    with pytest.raises(TrainingError):
        trainer.train(epochs=0)
