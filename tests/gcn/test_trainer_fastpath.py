"""Strided-eval trainer fast path vs the evaluate-every-epoch reference.

``train(eval_every=k)`` must be *exactly* the reference loop observed at
every k-th epoch: losses are recorded every epoch and must match the
reference's bit for bit (the skipped eval forwards have no side effects
when the analog-noise sigma is zero), and the metrics recorded at the
evaluated epochs must equal the reference's values at those same epochs.
Covered for both trainers (node classification and link prediction),
with and without an ISU :class:`UpdatePlan`, with and without dropout
(dropout exercises the recompute-eval branch; without it the eval
forward is skipped entirely and the training logits are reused).
"""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.gcn.trainer import LinkPredictionTrainer, NodeClassificationTrainer
from repro.graphs.generators import dc_sbm_graph
from repro.mapping.selective import build_update_plan


@pytest.fixture(scope="module")
def graph():
    return dc_sbm_graph(
        240, 3, 10.0, random_state=0, feature_dim=12, intra_ratio=0.9,
    )


@pytest.fixture(scope="module")
def plan(graph):
    return build_update_plan(graph, "isu", theta=0.5, minor_period=5)


def _node(graph, **kwargs):
    return NodeClassificationTrainer(
        graph, hidden_dim=24, num_layers=2, random_state=1, **kwargs,
    )


def _link(graph, **kwargs):
    return LinkPredictionTrainer(
        graph, hidden_dim=24, embedding_dim=16, random_state=1, **kwargs,
    )


def _assert_strided_matches_reference(make_trainer, epochs, eval_every,
                                      update_plan=None):
    fast = make_trainer().train(
        epochs=epochs, eval_every=eval_every, update_plan=update_plan,
    )
    ref = make_trainer().train_reference(
        epochs=epochs, update_plan=update_plan,
    )
    assert fast.losses == ref.losses  # exact: same training computation
    expected_epochs = sorted(
        {e for e in range(epochs) if (e + 1) % eval_every == 0}
        | {epochs - 1}
    )
    assert fast.eval_epochs == expected_epochs
    assert ref.eval_epochs == list(range(epochs))
    for position, epoch in enumerate(fast.eval_epochs):
        assert fast.train_metrics[position] == ref.train_metrics[epoch]
        assert fast.test_metrics[position] == ref.test_metrics[epoch]


@pytest.mark.parametrize("eval_every", [1, 3, 7])
def test_node_trainer_strided_eval(graph, eval_every):
    _assert_strided_matches_reference(
        lambda: _node(graph), epochs=12, eval_every=eval_every,
    )


@pytest.mark.parametrize("eval_every", [1, 4])
def test_node_trainer_strided_eval_with_plan(graph, plan, eval_every):
    _assert_strided_matches_reference(
        lambda: _node(graph), epochs=12, eval_every=eval_every,
        update_plan=plan,
    )


@pytest.mark.parametrize("eval_every", [1, 3, 7])
def test_link_trainer_strided_eval(graph, eval_every):
    _assert_strided_matches_reference(
        lambda: _link(graph), epochs=12, eval_every=eval_every,
    )


@pytest.mark.parametrize("eval_every", [1, 4])
def test_link_trainer_strided_eval_with_plan(graph, plan, eval_every):
    _assert_strided_matches_reference(
        lambda: _link(graph), epochs=12, eval_every=eval_every,
        update_plan=plan,
    )


def test_dropout_takes_recompute_branch_and_still_matches(graph):
    # With dropout the eval forward cannot reuse the training logits;
    # the fast path recomputes it, exactly like the reference.
    _assert_strided_matches_reference(
        lambda: _node(graph, dropout=0.3), epochs=8, eval_every=3,
    )


def test_final_epoch_always_evaluated(graph):
    result = _node(graph).train(epochs=10, eval_every=100)
    assert result.eval_epochs == [9]
    assert len(result.test_metrics) == 1
    assert len(result.losses) == 10


def test_start_epoch_keeps_plan_phase(graph, plan):
    fast = _node(graph).train(
        epochs=7, start_epoch=3, eval_every=2, update_plan=plan,
    )
    ref = _node(graph).train_reference(
        epochs=7, start_epoch=3, update_plan=plan,
    )
    assert fast.losses == ref.losses
    for position, epoch in enumerate(fast.eval_epochs):
        index = epoch - 3
        assert fast.test_metrics[position] == ref.test_metrics[index]


def test_analog_noise_forces_per_epoch_cadence(graph):
    # Eval forwards draw read noise from the model's RNG stream, so the
    # fast path pins eval_every back to 1 to keep runs reproducible.
    trainer = _node(graph, analog_noise_sigma=0.05)
    result = trainer.train(epochs=6, eval_every=3)
    assert result.eval_epochs == list(range(6))


def test_eval_every_validation(graph):
    with pytest.raises(TrainingError):
        _node(graph).train(epochs=5, eval_every=0)


def test_strided_result_properties(graph):
    result = _node(graph).train(epochs=9, eval_every=4)
    assert result.eval_epochs == [3, 7, 8]
    assert result.final_test_metric == result.test_metrics[-1]
    assert result.best_test_metric == max(result.test_metrics)
