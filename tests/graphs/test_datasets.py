"""Dataset catalog: Table III statistics, scaling, id/degree correlation."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.datasets import (
    DATASET_SPECS,
    OVERALL_EVAL_DATASETS,
    dataset_names,
    get_spec,
    load_dataset,
    relabel_by_noisy_degree,
)


def test_catalog_covers_paper_tables():
    assert set(dataset_names()) == {
        "ddi", "collab", "ppa", "proteins", "arxiv", "products", "cora",
    }
    assert set(OVERALL_EVAL_DATASETS) == {
        "ddi", "collab", "ppa", "proteins", "arxiv",
    }


def test_spec_paper_statistics_quoted():
    ddi = get_spec("ddi")
    assert ddi.paper_vertices == 4267
    assert ddi.paper_avg_degree == 500.5
    assert ddi.feature_dim == 256
    assert ddi.num_layers == 2
    cora = get_spec("cora")
    assert cora.paper_avg_degree == 3.9


def test_density_classification_matches_paper():
    # Dense: avg degree > 8 -> theta 50%; sparse -> 80%.
    assert get_spec("ddi").is_dense
    assert get_spec("ddi").selective_threshold == 0.5
    assert not get_spec("cora").is_dense
    assert get_spec("cora").selective_threshold == 0.8
    assert get_spec("collab").is_dense  # 8.2 > 8


def test_scale_factor_positive():
    for spec in DATASET_SPECS.values():
        assert spec.scale_factor >= 1.0


def test_get_spec_case_insensitive_and_unknown():
    assert get_spec("DDI").name == "ddi"
    with pytest.raises(GraphError):
        get_spec("imaginary")


@pytest.mark.parametrize("name", dataset_names())
def test_load_dataset_matches_spec(name):
    spec = get_spec(name)
    g = load_dataset(name, random_state=0)
    assert g.num_vertices == spec.sim_vertices
    assert g.feature_dim == spec.feature_dim
    # Average degree within 25% of the simulated target.
    assert g.average_degree == pytest.approx(spec.sim_avg_degree, rel=0.25)
    # Density class preserved.
    assert g.is_dense() == spec.is_dense


def test_load_dataset_scaling():
    g = load_dataset("cora", random_state=0, scale=0.5)
    assert g.num_vertices == pytest.approx(678 * 0.5, abs=2)
    with pytest.raises(GraphError):
        load_dataset("cora", scale=0.0)


def test_load_dataset_deterministic():
    a = load_dataset("arxiv", random_state=9)
    b = load_dataset("arxiv", random_state=9)
    np.testing.assert_array_equal(a.indices, b.indices)


def test_vertex_ids_correlate_with_degree():
    # Index mapping's skew (Fig. 6) requires id/degree correlation.
    g = load_dataset("proteins", random_state=0)
    n = g.num_vertices
    first_quarter = g.degrees[: n // 4].mean()
    last_quarter = g.degrees[-n // 4:].mean()
    assert first_quarter > 1.8 * last_quarter
    # The hubs concentrate at low ids: the top-64 id block's mean degree
    # towers over the bottom block's (the Fig. 6 mechanism).
    assert g.degrees[:64].mean() > 4 * g.degrees[-64:].mean()


def test_relabel_preserves_structure(small_graph):
    relabelled = relabel_by_noisy_degree(small_graph, random_state=0)
    assert relabelled.num_edges == small_graph.num_edges
    np.testing.assert_array_equal(
        np.sort(relabelled.degrees), np.sort(small_graph.degrees),
    )
    # Features/labels follow their vertices: label histogram unchanged.
    np.testing.assert_array_equal(
        np.bincount(relabelled.labels), np.bincount(small_graph.labels),
    )
