"""Generators: target statistics, determinism, validation."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.generators import (
    dc_sbm_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    sbm_graph,
)


def test_erdos_renyi_degree_target():
    g = erdos_renyi_graph(500, 8.0, random_state=0)
    assert 6.0 < g.average_degree < 10.0


def test_erdos_renyi_determinism():
    a = erdos_renyi_graph(100, 4.0, random_state=3)
    b = erdos_renyi_graph(100, 4.0, random_state=3)
    np.testing.assert_array_equal(a.indices, b.indices)


def test_erdos_renyi_validation():
    with pytest.raises(GraphError):
        erdos_renyi_graph(0, 4.0)
    with pytest.raises(GraphError):
        erdos_renyi_graph(10, -1.0)


def test_powerlaw_heavy_tail():
    g = powerlaw_cluster_graph(400, 8.0, random_state=1)
    degrees = np.sort(g.degrees)[::-1]
    # Preferential attachment: the top vertex well above the mean.
    assert degrees[0] > 4 * g.average_degree
    assert 6.0 < g.average_degree < 12.0


def test_powerlaw_validation():
    with pytest.raises(GraphError):
        powerlaw_cluster_graph(1, 4.0)
    with pytest.raises(GraphError):
        powerlaw_cluster_graph(10, 0.0)
    with pytest.raises(GraphError):
        powerlaw_cluster_graph(10, 4.0, triad_prob=1.5)


def test_sbm_labels_and_features():
    g = sbm_graph(
        300, 3, 10.0, random_state=2, feature_dim=8, intra_ratio=0.9,
    )
    assert g.num_classes == 3
    assert g.feature_dim == 8
    # Community structure: most edges intra-community.
    edges = g.edge_list()
    intra = (g.labels[edges[:, 0]] == g.labels[edges[:, 1]]).mean()
    assert intra > 0.6


def test_sbm_validation():
    with pytest.raises(GraphError):
        sbm_graph(2, 5, 4.0)
    with pytest.raises(GraphError):
        sbm_graph(10, 2, 4.0, intra_ratio=2.0)


def test_dc_sbm_combines_skew_and_communities():
    g = dc_sbm_graph(
        600, 4, 16.0, random_state=5, feature_dim=8,
        powerlaw_exponent=2.2,
    )
    assert g.num_classes == 4
    # Heavy tail: max degree well above mean.
    assert g.degrees.max() > 4 * g.average_degree
    # Edge-count targeting despite dedup of heavy-tail duplicates.
    assert 0.8 * 16.0 < g.average_degree <= 16.5
    edges = g.edge_list()
    intra = (g.labels[edges[:, 0]] == g.labels[edges[:, 1]]).mean()
    assert intra > 0.55


def test_dc_sbm_determinism():
    a = dc_sbm_graph(150, 3, 8.0, random_state=11, feature_dim=4)
    b = dc_sbm_graph(150, 3, 8.0, random_state=11, feature_dim=4)
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_allclose(a.features, b.features)


def test_dc_sbm_validation():
    with pytest.raises(GraphError):
        dc_sbm_graph(3, 5, 4.0)
    with pytest.raises(GraphError):
        dc_sbm_graph(10, 2, 4.0, powerlaw_exponent=0.5)
    with pytest.raises(GraphError):
        dc_sbm_graph(10, 2, -1.0)


def test_zero_degree_graphs():
    g = sbm_graph(20, 2, 0.0, random_state=0)
    assert g.num_edges == 0
    g2 = dc_sbm_graph(20, 2, 0.0, random_state=0)
    assert g2.num_edges == 0
