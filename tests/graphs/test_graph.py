"""Graph core: CSR invariants, accessors, linear algebra, transformations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.graph import Graph


def test_from_edges_basic(tiny_graph):
    assert tiny_graph.num_vertices == 6
    assert tiny_graph.num_edges == 6
    assert tiny_graph.num_arcs == 12
    np.testing.assert_array_equal(
        tiny_graph.degrees, [3, 2, 2, 2, 2, 1],
    )


def test_neighbors_sorted_and_symmetric(tiny_graph):
    np.testing.assert_array_equal(tiny_graph.neighbors(0), [1, 2, 3])
    for v in range(tiny_graph.num_vertices):
        for u in tiny_graph.neighbors(v):
            assert v in tiny_graph.neighbors(int(u))


def test_neighbors_out_of_range(tiny_graph):
    with pytest.raises(GraphError):
        tiny_graph.neighbors(6)
    with pytest.raises(GraphError):
        tiny_graph.neighbors(-1)


def test_self_loops_dropped():
    g = Graph.from_edges(3, [(0, 0), (0, 1), (1, 1)])
    assert g.num_edges == 1


def test_duplicate_edges_dedup():
    g = Graph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
    assert g.num_edges == 1
    g2 = Graph.from_edges(3, [(0, 1), (1, 0), (0, 1)], dedup=False)
    assert g2.num_arcs > 2


def test_empty_graph():
    g = Graph.from_edges(4, [])
    assert g.num_edges == 0
    assert g.average_degree == 0.0
    assert g.density == 0.0


def test_invalid_inputs():
    with pytest.raises(GraphError):
        Graph.from_edges(2, [(0, 5)])
    with pytest.raises(GraphError):
        Graph.from_edges(-1, [])
    with pytest.raises(GraphError):
        Graph(np.array([1, 2]), np.array([0]))  # indptr[0] != 0
    with pytest.raises(GraphError):
        Graph(np.array([0, 2]), np.array([0]))  # indptr[-1] != len(indices)


def test_features_and_labels_validation():
    with pytest.raises(GraphError):
        Graph.from_edges(3, [(0, 1)], features=np.zeros((2, 4)))
    with pytest.raises(GraphError):
        Graph.from_edges(3, [(0, 1)], labels=np.zeros(2, dtype=int))


def test_density_and_sparsity(tiny_graph):
    assert tiny_graph.density == pytest.approx(6 / 15)
    assert tiny_graph.sparsity == pytest.approx(1 - 12 / 36)


def test_is_dense_threshold(tiny_graph):
    assert not tiny_graph.is_dense()  # avg degree 2
    assert tiny_graph.is_dense(threshold=1.0)


def test_adjacency_matmul_matches_dense(tiny_graph):
    n = tiny_graph.num_vertices
    dense = np.zeros((n, n))
    for v in range(n):
        for u in tiny_graph.neighbors(v):
            dense[v, u] = 1.0
    x = np.random.default_rng(0).normal(size=(n, 3)).astype(np.float32)
    np.testing.assert_allclose(
        tiny_graph.adjacency_matmul(x), dense @ x, rtol=1e-5,
    )


def test_normalized_adjacency_matmul_matches_dense(tiny_graph):
    n = tiny_graph.num_vertices
    dense = np.zeros((n, n))
    for v in range(n):
        for u in tiny_graph.neighbors(v):
            dense[v, u] = 1.0
    dense += np.eye(n)
    inv_sqrt = 1.0 / np.sqrt(tiny_graph.degrees + 1.0)
    norm = dense * inv_sqrt[:, None] * inv_sqrt[None, :]
    x = np.random.default_rng(1).normal(size=(n, 2)).astype(np.float32)
    np.testing.assert_allclose(
        tiny_graph.normalized_adjacency_matmul(x), norm @ x, rtol=1e-4,
    )


def test_matmul_shape_mismatch(tiny_graph):
    with pytest.raises(GraphError):
        tiny_graph.adjacency_matmul(np.zeros((3, 2)))
    with pytest.raises(GraphError):
        tiny_graph.normalized_adjacency_matmul(np.zeros((3, 2)))


def test_with_features_and_labels(tiny_graph):
    new_features = np.ones((6, 2), dtype=np.float32)
    g = tiny_graph.with_features(new_features)
    assert g.feature_dim == 2
    np.testing.assert_array_equal(g.labels, tiny_graph.labels)
    g2 = tiny_graph.with_labels(np.zeros(6, dtype=np.int64))
    assert g2.num_classes == 1


def test_edge_list_roundtrip(tiny_graph):
    edges = tiny_graph.edge_list()
    rebuilt = Graph.from_edges(tiny_graph.num_vertices, edges)
    np.testing.assert_array_equal(rebuilt.degrees, tiny_graph.degrees)


def test_subgraph(tiny_graph):
    sub = tiny_graph.subgraph([0, 1, 2])
    assert sub.num_vertices == 3
    assert sub.num_edges == 3  # the 0-1-2 triangle
    np.testing.assert_array_equal(sub.labels, [0, 0, 0])


def test_subgraph_validation(tiny_graph):
    with pytest.raises(GraphError):
        tiny_graph.subgraph([0, 0])
    with pytest.raises(GraphError):
        tiny_graph.subgraph([99])


def test_views_are_readonly(tiny_graph):
    with pytest.raises(ValueError):
        tiny_graph.degrees[0] = 5
    with pytest.raises(ValueError):
        tiny_graph.indices[0] = 0
    with pytest.raises(ValueError):
        tiny_graph.indptr[0] = 1


def test_num_classes(tiny_graph):
    assert tiny_graph.num_classes == 2
    assert Graph.from_edges(2, [(0, 1)]).num_classes == 0


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    m = draw(st.integers(min_value=0, max_value=60))
    edges = [
        (draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1)))
        for _ in range(m)
    ]
    return n, edges


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_csr_invariants_hold(case):
    n, edges = case
    g = Graph.from_edges(n, edges)
    # indptr is monotone and consistent with indices.
    assert g.indptr[0] == 0
    assert g.indptr[-1] == g.num_arcs
    assert np.all(np.diff(g.indptr) >= 0)
    # Undirected symmetry: arc (u, v) implies arc (v, u).
    src = np.repeat(np.arange(n), g.degrees)
    pairs = set(zip(src.tolist(), g.indices.tolist()))
    assert all((v, u) in pairs for u, v in pairs)
    # No self loops; degrees sum to arcs.
    assert all(u != v for u, v in pairs)
    assert g.degrees.sum() == g.num_arcs


@given(edge_lists())
@settings(max_examples=30, deadline=None)
def test_adjacency_matmul_linear(case):
    n, edges = case
    g = Graph.from_edges(n, edges)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(n, 2)).astype(np.float32)
    y = rng.normal(size=(n, 2)).astype(np.float32)
    left = g.adjacency_matmul(x + y)
    right = g.adjacency_matmul(x) + g.adjacency_matmul(y)
    np.testing.assert_allclose(left, right, rtol=1e-4, atol=1e-4)
