"""Graph npz serialisation."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.io import load_graph, save_graph


def test_round_trip_full(tiny_graph, tmp_path):
    path = tmp_path / "g.npz"
    save_graph(tiny_graph, path)
    loaded = load_graph(path)
    assert loaded.name == tiny_graph.name
    np.testing.assert_array_equal(loaded.indptr, tiny_graph.indptr)
    np.testing.assert_array_equal(loaded.indices, tiny_graph.indices)
    np.testing.assert_allclose(loaded.features, tiny_graph.features)
    np.testing.assert_array_equal(loaded.labels, tiny_graph.labels)


def test_round_trip_bare(tmp_path):
    from repro.graphs.graph import Graph

    g = Graph.from_edges(5, [(0, 1), (2, 3)], name="bare")
    path = tmp_path / "bare.npz"
    save_graph(g, path)
    loaded = load_graph(path)
    assert loaded.features is None and loaded.labels is None
    assert loaded.num_edges == 2


def test_load_missing(tmp_path):
    with pytest.raises(GraphError):
        load_graph(tmp_path / "absent.npz")


def test_load_garbage(tmp_path):
    path = tmp_path / "junk.npz"
    path.write_bytes(b"not an npz")
    with pytest.raises(GraphError):
        load_graph(path)


def test_version_mismatch(tiny_graph, tmp_path):
    path = tmp_path / "g.npz"
    np.savez_compressed(
        path,
        format_version=np.array([99]),
        name=np.array(["x"]),
        indptr=np.asarray(tiny_graph.indptr),
        indices=np.asarray(tiny_graph.indices),
    )
    with pytest.raises(GraphError):
        load_graph(path)
