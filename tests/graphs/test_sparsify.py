"""Sparsifiers and degree-based selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.generators import dc_sbm_graph
from repro.graphs.sparsify import (
    degree_rank,
    drop_edges_random,
    sparsify_by_degree,
    top_degree_vertices,
)


def test_top_degree_vertices_selects_highest(tiny_graph):
    top = top_degree_vertices(tiny_graph, 0.5)
    assert len(top) == 3
    assert top[0] == 0  # degree 3 is the max
    selected_degrees = tiny_graph.degrees[top]
    unselected = np.setdiff1d(np.arange(6), top)
    assert selected_degrees.min() >= tiny_graph.degrees[unselected].max()


def test_top_degree_deterministic_ties(tiny_graph):
    a = top_degree_vertices(tiny_graph, 0.5)
    b = top_degree_vertices(tiny_graph, 0.5)
    np.testing.assert_array_equal(a, b)


def test_top_degree_bounds(tiny_graph):
    assert len(top_degree_vertices(tiny_graph, 0.0)) == 0
    assert len(top_degree_vertices(tiny_graph, 1.0)) == 6
    with pytest.raises(GraphError):
        top_degree_vertices(tiny_graph, 1.5)


def test_degree_rank_descending(small_graph):
    order = degree_rank(small_graph)
    degs = small_graph.degrees[order]
    assert np.all(np.diff(degs) <= 0)


def test_drop_edges_random(small_graph):
    sparse = drop_edges_random(small_graph, 0.5, random_state=0)
    assert sparse.num_vertices == small_graph.num_vertices
    assert sparse.num_edges == pytest.approx(
        small_graph.num_edges * 0.5, abs=1,
    )
    assert drop_edges_random(small_graph, 0.0).num_edges == small_graph.num_edges
    assert drop_edges_random(small_graph, 1.0).num_edges == 0
    with pytest.raises(GraphError):
        drop_edges_random(small_graph, -0.1)


def test_sparsify_by_degree_keeps_important_subgraph(small_graph):
    theta = 0.5
    pruned = sparsify_by_degree(small_graph, theta)
    important = set(top_degree_vertices(small_graph, theta).tolist())
    for u, v in pruned.edge_list():
        assert u in important and v in important
    assert pruned.num_edges <= small_graph.num_edges
    assert pruned.num_vertices == small_graph.num_vertices


@given(theta=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=25, deadline=None)
def test_selection_size_matches_theta(theta):
    g = dc_sbm_graph(120, 3, 6.0, random_state=0)
    top = top_degree_vertices(g, theta)
    assert len(top) == int(round(theta * g.num_vertices))
