"""SpMM equivalence: cached-CSR / segment-sum kernels vs the scatter oracle.

``Graph.adjacency_matmul`` (scipy CSR when available, ``np.add.reduceat``
segment-sum otherwise) must match ``adjacency_matmul_reference`` — the
original ``np.add.at`` scatter — on every graph, including degree-0
vertices and edgeless graphs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.graphs.graph as graph_mod
from repro.graphs.generators import dc_sbm_graph
from repro.graphs.graph import Graph


def _random_graph(num_vertices: int, edge_seeds: list) -> Graph:
    """Graph from drawn (u, v) pairs; isolated vertices are common."""
    edges = [
        (u % num_vertices, v % num_vertices) for u, v in edge_seeds
    ]
    return Graph.from_edges(num_vertices, edges, name="prop")


@settings(max_examples=60, deadline=None)
@given(
    num_vertices=st.integers(min_value=1, max_value=40),
    edge_seeds=st.lists(
        st.tuples(st.integers(0, 1000), st.integers(0, 1000)),
        max_size=120,
    ),
    feature_dim=st.integers(min_value=1, max_value=9),
    data=st.data(),
)
def test_adjacency_matmul_matches_reference(
    num_vertices, edge_seeds, feature_dim, data,
):
    graph = _random_graph(num_vertices, edge_seeds)
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    matrix = rng.standard_normal(
        (num_vertices, feature_dim)
    ).astype(np.float32)
    expected = graph.adjacency_matmul_reference(matrix)
    np.testing.assert_allclose(
        graph.adjacency_matmul(matrix), expected, rtol=1e-5, atol=1e-5,
    )
    # Degree-0 rows must aggregate to exactly zero.
    isolated = graph.degrees == 0
    assert np.all(expected[isolated] == 0.0)


@settings(max_examples=30, deadline=None)
@given(
    num_vertices=st.integers(min_value=1, max_value=30),
    edge_seeds=st.lists(
        st.tuples(st.integers(0, 1000), st.integers(0, 1000)),
        max_size=90,
    ),
)
def test_segment_sum_fallback_matches_reference(num_vertices, edge_seeds):
    """The scipy-free reduceat path must agree with the oracle too."""
    graph = _random_graph(num_vertices, edge_seeds)
    rng = np.random.default_rng(7)
    matrix = rng.standard_normal((num_vertices, 5)).astype(np.float32)
    saved = graph_mod._sparse
    graph_mod._sparse = None
    try:
        fallback = graph.adjacency_matmul(matrix)
    finally:
        graph_mod._sparse = saved
    np.testing.assert_allclose(
        fallback,
        graph.adjacency_matmul_reference(matrix),
        rtol=1e-5, atol=1e-5,
    )


def test_edgeless_graph_aggregates_to_zero():
    graph = Graph.from_edges(5, [], name="empty")
    matrix = np.ones((5, 3), dtype=np.float32)
    assert np.all(graph.adjacency_matmul(matrix) == 0.0)
    assert np.all(graph.adjacency_matmul_reference(matrix) == 0.0)


def test_dtype_normalised_to_float32_once():
    """float64 input is converted at the boundary, not per operation."""
    graph = dc_sbm_graph(
        num_vertices=64, num_communities=2, avg_degree=6.0,
        random_state=0, name="dtype",
    )
    matrix64 = np.random.default_rng(0).standard_normal((64, 8))
    for op in (
        graph.adjacency_matmul,
        graph.mean_adjacency_matmul,
        graph.normalized_adjacency_matmul,
    ):
        assert op(matrix64).dtype == np.float32
        assert op(matrix64.astype(np.float32)).dtype == np.float32


def test_normalized_and_mean_matmul_1d_and_2d_agree():
    graph = dc_sbm_graph(
        num_vertices=48, num_communities=2, avg_degree=5.0,
        random_state=1, name="1d2d",
    )
    vec = np.random.default_rng(1).standard_normal(48).astype(np.float32)
    for op in (graph.mean_adjacency_matmul,
               graph.normalized_adjacency_matmul):
        np.testing.assert_allclose(
            op(vec), op(vec[:, None])[:, 0], rtol=1e-6, atol=1e-6,
        )


def test_lazy_cache_not_pickled():
    """Pickling (disk cache) drops the rebuildable CSR/cache structures."""
    import pickle

    graph = dc_sbm_graph(
        num_vertices=32, num_communities=2, avg_degree=4.0,
        random_state=2, name="pickle",
    )
    matrix = np.ones((32, 4), dtype=np.float32)
    before = graph.adjacency_matmul(matrix)  # populates the lazy cache
    clone = pickle.loads(pickle.dumps(graph))
    assert clone._lazy == {}
    np.testing.assert_allclose(clone.adjacency_matmul(matrix), before)
    assert clone.content_fingerprint() == graph.content_fingerprint()
