"""Graph statistics module."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.datasets import load_dataset
from repro.graphs.generators import dc_sbm_graph, erdos_renyi_graph
from repro.graphs.graph import Graph
from repro.graphs.stats import (
    compute_stats,
    degree_gini,
    homophily,
    powerlaw_alpha_mle,
)


def test_compute_stats_fields(small_graph):
    stats = compute_stats(small_graph)
    assert stats.num_vertices == small_graph.num_vertices
    assert stats.num_edges == small_graph.num_edges
    assert stats.degree_p50 <= stats.degree_p90 <= stats.degree_p99
    assert stats.max_degree == small_graph.degrees.max()
    assert 0.0 <= stats.degree_gini <= 1.0
    d = stats.as_dict()
    assert d["average_degree"] == pytest.approx(small_graph.average_degree)


def test_powerlaw_alpha_reasonable():
    g = dc_sbm_graph(2000, 4, 16.0, random_state=0, powerlaw_exponent=2.5)
    alpha = powerlaw_alpha_mle(g.degrees, d_min=8)
    assert alpha is not None
    assert 1.5 < alpha < 6.0


def test_powerlaw_alpha_none_for_tiny():
    degrees = np.array([1, 1, 2])
    assert powerlaw_alpha_mle(degrees, d_min=2) is None
    with pytest.raises(GraphError):
        powerlaw_alpha_mle(degrees, d_min=0)


def test_gini_flat_vs_skewed():
    flat = erdos_renyi_graph(500, 10.0, random_state=0)
    skewed = dc_sbm_graph(500, 2, 10.0, random_state=0,
                          powerlaw_exponent=2.0)
    assert degree_gini(skewed.degrees) > degree_gini(flat.degrees)
    assert degree_gini(np.array([], dtype=np.int64)) == 0.0
    assert degree_gini(np.zeros(5, dtype=np.int64)) == 0.0


def test_homophily_labelled_and_not(small_graph):
    value = homophily(small_graph)
    assert value is not None and 0.0 <= value <= 1.0
    unlabelled = Graph.from_edges(4, [(0, 1)])
    assert homophily(unlabelled) is None
    no_edges = Graph.from_edges(3, [], labels=np.zeros(3, dtype=np.int64))
    assert homophily(no_edges) is None


def test_paper_datasets_have_community_structure():
    g = load_dataset("arxiv", random_state=0)
    stats = compute_stats(g)
    # Intra ratio 0.55 -> homophily clearly above the 1/16 random chance.
    assert stats.homophily > 0.3
    assert stats.degree_gini > 0.2  # heavy-tailed


def test_empty_graph_rejected():
    with pytest.raises(GraphError):
        compute_stats(Graph(np.array([0]), np.array([], dtype=np.int64)))
