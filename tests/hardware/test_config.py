"""HardwareConfig: Table II values, derived quantities, validation."""

import pytest

from repro.errors import ConfigError
from repro.hardware.config import DEFAULT_CONFIG, ComponentSpec, HardwareConfig


def test_table_ii_defaults():
    cfg = DEFAULT_CONFIG
    assert cfg.crossbar_rows == 64 and cfg.crossbar_cols == 64
    assert cfg.bits_per_cell == 2
    assert cfg.read_latency_ns == pytest.approx(29.31)
    assert cfg.write_latency_ns == pytest.approx(50.88)
    assert cfg.crossbars_per_pe == 32
    assert cfg.pes_per_tile == 8
    assert cfg.tiles_per_chip == 65536
    assert cfg.adc_bits == 8 and cfg.dac_bits == 2


def test_derived_quantities():
    cfg = DEFAULT_CONFIG
    assert cfg.cells_per_weight == 2
    assert cfg.input_cycles == 8
    assert cfg.logical_cols == 32
    assert cfg.cells_per_crossbar == 4096
    assert cfg.crossbars_per_tile == 256
    assert cfg.mvm_latency_ns == pytest.approx(8 * 29.31)
    assert cfg.row_write_latency_ns == pytest.approx(2 * 50.88)


def test_total_crossbars_from_capacity():
    # 16 GiB at 1 KiB per crossbar (4096 cells x 2 bits).
    assert DEFAULT_CONFIG.total_crossbars == 16 * 1024 ** 3 // 1024


def test_table_vi_crossbar_counts():
    # The mapping geometry reproduces Table VI: a 256x256 weight matrix
    # takes 32 crossbars; ddi's 4267x256 feature matrix ~534.
    from repro.mapping.tiling import crossbars_for_matrix

    assert crossbars_for_matrix(256, 256) == 32
    assert crossbars_for_matrix(4267, 256) == 67 * 8  # grid form of ~534


def test_scaled_override():
    cfg = DEFAULT_CONFIG.scaled(array_capacity_bytes=1024 ** 2)
    assert cfg.total_crossbars == 1024
    assert cfg.crossbar_rows == DEFAULT_CONFIG.crossbar_rows


def test_validation_rejects_bad_values():
    with pytest.raises(ConfigError):
        HardwareConfig(crossbar_rows=0)
    with pytest.raises(ConfigError):
        HardwareConfig(weight_bits=3)  # not divisible by 2 bits/cell
    with pytest.raises(ConfigError):
        HardwareConfig(input_bits=15)  # not divisible by dac_bits
    with pytest.raises(ConfigError):
        HardwareConfig(idle_power_fraction=1.5)


def test_component_spec_totals():
    spec = ComponentSpec(power_mw=2.0, area_mm2=0.01, count=4)
    assert spec.total_power_mw == 8.0
    assert spec.total_area_mm2 == pytest.approx(0.04)
    with pytest.raises(ConfigError):
        ComponentSpec(power_mw=-1.0, area_mm2=0.0)


def test_component_catalog_complete():
    keys = set(DEFAULT_CONFIG.components)
    assert {"adc", "dac", "sample_hold", "crossbar", "input_buffer",
            "crossbar_buffer", "output_buffer", "weight_computer",
            "activation_module", "central_controller"} <= keys
