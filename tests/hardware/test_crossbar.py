"""Crossbar functional + cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import MappingError
from repro.hardware.config import DEFAULT_CONFIG
from repro.hardware.crossbar import Crossbar, CrossbarStats, quantize_symmetric


def test_program_and_mvm_exact():
    xb = Crossbar()
    matrix = np.arange(12, dtype=np.float32).reshape(4, 3)
    latency = xb.program(matrix)
    assert latency == pytest.approx(4 * DEFAULT_CONFIG.row_write_latency_ns)
    vec = np.array([1.0, 0.0, 2.0, 0.0])
    out = xb.mvm(vec)
    expected = vec @ matrix
    np.testing.assert_allclose(out[:3], expected)
    np.testing.assert_allclose(out[3:], 0.0)


def test_mvm_pads_short_input():
    xb = Crossbar()
    xb.program(np.eye(4, dtype=np.float32))
    out = xb.mvm([5.0, 6.0])
    assert out[0] == 5.0 and out[1] == 6.0


def test_mvm_batch_matches_loop():
    xb = Crossbar()
    rng = np.random.default_rng(0)
    matrix = rng.normal(size=(8, 5)).astype(np.float32)
    xb.program(matrix)
    inputs = rng.normal(size=(6, 8)).astype(np.float32)
    batch = xb.mvm_batch(inputs)
    for i, row in enumerate(inputs):
        np.testing.assert_allclose(batch[i], xb.mvm(row), rtol=1e-5)


def test_stats_accounting():
    xb = Crossbar()
    xb.program(np.ones((3, 2), dtype=np.float32))
    xb.mvm(np.ones(3))
    xb.mvm_batch(np.ones((5, 3)))
    assert xb.stats.row_writes == 3
    assert xb.stats.mvm_reads == 6
    expected_busy = (
        3 * DEFAULT_CONFIG.row_write_latency_ns
        + 6 * DEFAULT_CONFIG.mvm_latency_ns
    )
    assert xb.stats.busy_ns == pytest.approx(expected_busy)


def test_write_rows_partial_update():
    xb = Crossbar()
    xb.program(np.ones((4, 2), dtype=np.float32))
    xb.write_rows(np.array([1]), np.array([[9.0, 9.0]], dtype=np.float32))
    assert xb.values[1, 0] == 9.0
    assert xb.values[0, 0] == 1.0


def test_size_violations():
    xb = Crossbar()
    with pytest.raises(MappingError):
        xb.program(np.ones((65, 2)))
    with pytest.raises(MappingError):
        xb.program(np.ones((2, 33)))
    with pytest.raises(MappingError):
        xb.mvm(np.ones(65))
    with pytest.raises(MappingError):
        xb.write_rows(np.array([64]), np.ones((1, 2)))


def test_reset():
    xb = Crossbar()
    xb.program(np.ones((2, 2), dtype=np.float32))
    xb.reset()
    assert xb.stats.row_writes == 0
    assert np.all(xb.values == 0.0)


def test_stats_merge_and_copy():
    a = CrossbarStats(mvm_reads=2, row_writes=3, busy_ns=10.0)
    b = CrossbarStats(mvm_reads=1, row_writes=1, busy_ns=5.0)
    a.merge(b)
    assert (a.mvm_reads, a.row_writes, a.busy_ns) == (3, 4, 15.0)
    c = a.copy()
    c.mvm_reads = 99
    assert a.mvm_reads == 3


def test_quantize_symmetric_zero_and_error_bound():
    zeros = np.zeros(5, dtype=np.float32)
    np.testing.assert_array_equal(quantize_symmetric(zeros, 8), zeros)
    with pytest.raises(MappingError):
        quantize_symmetric(zeros, 0)


@given(arrays(np.float32, (4, 4),
              elements=st.floats(-100, 100, width=32)))
@settings(max_examples=50, deadline=None)
def test_quantization_error_bounded(matrix):
    bits = 8
    quantised = quantize_symmetric(matrix, bits)
    max_abs = float(np.max(np.abs(matrix)))
    if max_abs > 0:
        step = max_abs / (2 ** (bits - 1) - 1)
        assert np.max(np.abs(quantised - matrix)) <= step / 2 + 1e-4


def test_quantized_crossbar_close_to_exact():
    cfg = DEFAULT_CONFIG.scaled(weight_bits=8)
    exact = Crossbar(cfg)
    quant = Crossbar(cfg, quantize=True)
    rng = np.random.default_rng(3)
    matrix = rng.normal(size=(16, 8)).astype(np.float32)
    exact.program(matrix)
    quant.program(matrix)
    vec = rng.normal(size=16).astype(np.float32)
    np.testing.assert_allclose(
        quant.mvm(vec)[:8], exact.mvm(vec)[:8], rtol=0.05, atol=0.5,
    )


def test_read_noise_validation_and_determinism():
    with pytest.raises(MappingError):
        Crossbar(read_noise_sigma=-0.1)
    a = Crossbar(read_noise_sigma=0.05, random_state=7)
    b = Crossbar(read_noise_sigma=0.05, random_state=7)
    matrix = np.ones((4, 4), dtype=np.float32)
    a.program(matrix)
    b.program(matrix)
    vec = np.ones(4, dtype=np.float32)
    np.testing.assert_allclose(a.mvm(vec), b.mvm(vec))


def test_read_noise_perturbs_but_tracks():
    clean = Crossbar()
    noisy = Crossbar(read_noise_sigma=0.02, random_state=0)
    matrix = np.random.default_rng(0).normal(size=(8, 8)).astype(np.float32)
    clean.program(matrix)
    noisy.program(matrix)
    vec = np.ones(8, dtype=np.float32)
    exact = clean.mvm(vec)
    out = noisy.mvm(vec)
    assert not np.allclose(out, exact)
    np.testing.assert_allclose(out, exact, rtol=0.2, atol=1e-3)
