"""Endurance / lifetime model."""

import pytest

from repro.errors import ConfigError
from repro.hardware.endurance import (
    RERAM_ENDURANCE_WRITES,
    SRAM_ENDURANCE_WRITES,
    compare_schemes,
    estimate_lifetime,
    rows_written_per_epoch,
)
from repro.mapping.selective import build_update_plan


def test_endurance_constants_match_paper():
    # Section IV-A: SRAM 10^16 writes vs ReRAM 10^8.
    assert RERAM_ENDURANCE_WRITES == 10 ** 8
    assert SRAM_ENDURANCE_WRITES == 10 ** 16


def test_rates_follow_schedule(small_graph):
    plan = build_update_plan(small_graph, "isu", theta=0.25, minor_period=10)
    rates = rows_written_per_epoch(plan)
    assert rates.shape == (small_graph.num_vertices,)
    assert rates.max() == 1.0
    assert rates.min() == pytest.approx(0.1)
    assert (rates == 1.0).sum() == plan.num_important


def test_full_update_uniform_wear(small_graph):
    plan = build_update_plan(small_graph, "full")
    report = estimate_lifetime(plan, "full")
    assert report.writes_per_epoch_worst_row == report.writes_per_epoch_median_row
    assert report.epochs_to_wearout_worst == pytest.approx(
        RERAM_ENDURANCE_WRITES / report.writes_per_epoch_worst_row,
    )


def test_isu_extends_median_not_worst(small_graph):
    full = estimate_lifetime(build_update_plan(small_graph, "full"), "full")
    isu = estimate_lifetime(
        build_update_plan(small_graph, "isu", theta=0.3), "isu",
    )
    # Hubs wear identically; the median row lasts much longer under ISU.
    assert isu.epochs_to_wearout_worst == full.epochs_to_wearout_worst
    assert isu.epochs_to_wearout_median > 5 * full.epochs_to_wearout_median
    assert isu.writes_per_epoch_mean < full.writes_per_epoch_mean


def test_lifetime_seconds(small_graph):
    report = estimate_lifetime(build_update_plan(small_graph, "full"), "full")
    assert report.lifetime_seconds(1e6) == pytest.approx(
        report.epochs_to_wearout_worst * 1e-3,
    )
    with pytest.raises(ConfigError):
        report.lifetime_seconds(0.0)


def test_compare_schemes(small_graph):
    reports = compare_schemes({
        "full": build_update_plan(small_graph, "full"),
        "isu": build_update_plan(small_graph, "isu"),
    })
    assert set(reports) == {"full", "isu"}
    assert reports["isu"].scheme == "isu"


def test_validation(small_graph):
    plan = build_update_plan(small_graph, "full")
    with pytest.raises(ConfigError):
        estimate_lifetime(plan, "x", endurance_writes=0)
    with pytest.raises(ConfigError):
        estimate_lifetime(plan, "x", pulses_per_write=0)
    with pytest.raises(ConfigError):
        estimate_lifetime(plan, "x", layers_sharing_row=0)


def test_wear_leveling_extends_worst_row(small_graph):
    from repro.hardware.endurance import (
        estimate_lifetime_with_leveling,
        wear_levelled_rates,
    )

    plan = build_update_plan(small_graph, "isu", theta=0.3)
    static = estimate_lifetime(plan, "isu")
    levelled = estimate_lifetime_with_leveling(plan, "isu")
    # Interleaved mapping mixes hot and cold rows per crossbar, so the
    # levelled worst rate sits below the static hub rate.
    assert levelled.epochs_to_wearout_worst > static.epochs_to_wearout_worst
    assert levelled.scheme == "isu+leveling"
    rates = wear_levelled_rates(plan)
    assert rates.shape == (small_graph.num_vertices,)


def test_wear_leveling_rotation_cost(small_graph):
    from repro.hardware.endurance import wear_levelled_rates

    plan = build_update_plan(small_graph, "isu", theta=0.3)
    frequent = wear_levelled_rates(plan, rotation_period_epochs=2)
    rare = wear_levelled_rates(plan, rotation_period_epochs=200)
    # Rotating more often costs more background writes.
    assert frequent.mean() > rare.mean()
    with pytest.raises(ConfigError):
        wear_levelled_rates(plan, rotation_period_epochs=0)
