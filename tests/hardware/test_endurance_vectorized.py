"""Bincount wear-levelling vs the per-crossbar loop reference.

``wear_levelled_rates`` computes each crossbar's mean write rate with two
``np.bincount`` passes; the retained reference loops over crossbars with
``np.mean``.  ``np.mean`` uses pairwise summation while ``bincount`` sums
sequentially, so the two agree to allclose (observed ~4e-16), not bit for
bit — the tolerance here is deliberately tight to pin that down.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hardware.endurance import (
    estimate_lifetime,
    estimate_lifetime_with_leveling,
    wear_levelled_rates,
    wear_levelled_rates_reference,
)
from repro.graphs.generators import dc_sbm_graph
from repro.mapping.selective import build_update_plan


@pytest.mark.parametrize("strategy,theta,rows", [
    ("isu", 0.25, 16),
    ("isu", 0.5, 64),
    ("full", None, 16),
    ("osu", 0.3, 32),
])
def test_matches_reference(strategy, theta, rows):
    graph = dc_sbm_graph(300, 3, 8.0, random_state=5, feature_dim=8)
    plan = build_update_plan(
        graph, strategy, theta=theta, rows_per_crossbar=rows,
        minor_period=10,
    )
    for period in (1, 20, 100):
        vec = wear_levelled_rates(plan, rotation_period_epochs=period)
        ref = wear_levelled_rates_reference(
            plan, rotation_period_epochs=period,
        )
        np.testing.assert_allclose(vec, ref, rtol=1e-12, atol=1e-15)


def test_levelling_spreads_hub_wear(small_graph):
    plan = build_update_plan(
        small_graph, "isu", theta=0.2, minor_period=10,
    )
    levelled = wear_levelled_rates(plan, rotation_period_epochs=100)
    static = estimate_lifetime(plan, "isu")
    report = estimate_lifetime_with_leveling(plan, "isu")
    # Levelling caps the worst row at (crossbar mean + rotation tax),
    # which for skewed plans beats the unlevelled hub rate of 1.0.
    assert levelled.max() < 1.0 + 1.0 / 100 + 1e-12
    assert report.writes_per_epoch_worst_row <= (
        static.writes_per_epoch_worst_row + 2.0 / 100 + 1e-12
    )


def test_rotation_period_validation(small_graph):
    plan = build_update_plan(small_graph, "isu", theta=0.25)
    with pytest.raises(ConfigError):
        wear_levelled_rates(plan, rotation_period_epochs=0)
    with pytest.raises(ConfigError):
        wear_levelled_rates_reference(plan, rotation_period_epochs=0)
