"""Energy model: per-category attribution, merging, area report."""

import pytest

from repro.errors import ConfigError
from repro.hardware.config import DEFAULT_CONFIG
from repro.hardware.crossbar import CrossbarStats
from repro.hardware.energy import EnergyBreakdown, EnergyModel, area_report


def test_breakdown_total_and_merge():
    a = EnergyBreakdown(crossbar_read_pj=1.0, peripheral_pj=2.0)
    b = EnergyBreakdown(crossbar_write_pj=3.0, static_pj=4.0)
    a.merge(b)
    assert a.total_pj == pytest.approx(10.0)
    d = a.as_dict()
    assert d["total_pj"] == pytest.approx(10.0)
    assert d["crossbar_write_pj"] == 3.0


def test_crossbar_activity_energy_scaling():
    model = EnergyModel()
    stats = CrossbarStats(mvm_reads=10, row_writes=5, busy_ns=100.0)
    one = model.crossbar_activity_energy(stats, crossbars_active=1)
    two = model.crossbar_activity_energy(stats, crossbars_active=2)
    # Reads and peripherals scale with active crossbars; writes are counted
    # as row events and do not.
    assert two.crossbar_read_pj == pytest.approx(2 * one.crossbar_read_pj)
    assert two.peripheral_pj == pytest.approx(2 * one.peripheral_pj)
    assert two.crossbar_write_pj == pytest.approx(one.crossbar_write_pj)


def test_write_energy_per_row():
    model = EnergyModel()
    stats = CrossbarStats(row_writes=7)
    out = model.crossbar_activity_energy(stats)
    assert out.crossbar_write_pj == pytest.approx(
        7 * DEFAULT_CONFIG.crossbar_write_energy_pj,
    )


def test_idle_energy_proportional():
    model = EnergyModel()
    one = model.idle_energy(1000.0)
    two = model.idle_energy(2000.0)
    assert two.idle_leakage_pj == pytest.approx(2 * one.idle_leakage_pj)
    assert one.idle_leakage_pj > 0
    with pytest.raises(ConfigError):
        model.idle_energy(-1.0)


def test_traffic_energies():
    model = EnergyModel()
    assert model.buffer_energy(100.0).buffer_pj == pytest.approx(
        100.0 * DEFAULT_CONFIG.buffer_access_energy_pj_per_byte,
    )
    assert model.offchip_energy(100.0).offchip_pj == pytest.approx(
        100.0 * DEFAULT_CONFIG.offchip_access_energy_pj_per_byte,
    )
    with pytest.raises(ConfigError):
        model.buffer_energy(-1.0)


def test_static_energy_uses_chip_components():
    model = EnergyModel()
    out = model.static_energy(1000.0)
    expected_power = (
        DEFAULT_CONFIG.components["central_controller"].total_power_mw
        + DEFAULT_CONFIG.components["weight_computer"].total_power_mw
        + DEFAULT_CONFIG.components["activation_module"].total_power_mw
    )
    assert out.static_pj == pytest.approx(1000.0 * expected_power)


def test_negative_inputs_rejected():
    model = EnergyModel()
    with pytest.raises(ConfigError):
        model.crossbar_activity_energy(CrossbarStats(), crossbars_active=-1)
    with pytest.raises(ConfigError):
        model.static_energy(-5.0)


def test_area_report_structure():
    report = area_report()
    assert report["pe_mm2"] > 0
    assert report["tile_mm2"] > report["pe_mm2"]
    assert report["chip_overhead_mm2"] > 0
