"""Functional engine: numerics match numpy, costs match the analytic model."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.graphs.generators import dc_sbm_graph
from repro.hardware.config import DEFAULT_CONFIG
from repro.hardware.engine import MappedMatrix, aggregate, combine


@pytest.fixture(scope="module")
def weights():
    rng = np.random.default_rng(0)
    return rng.normal(size=(100, 48)).astype(np.float32)


def test_mapped_matrix_structure(weights):
    mapped = MappedMatrix(weights)
    assert mapped.shape == (100, 48)
    # 100 rows -> 2 row tiles; 48 cols -> 2 col tiles of 32 values.
    assert mapped.plan.row_tiles == 2
    assert mapped.plan.col_tiles == 2
    assert mapped.num_crossbars == 4
    np.testing.assert_allclose(mapped.resident_matrix(), weights)


def test_mvm_matches_numpy(weights):
    mapped = MappedMatrix(weights)
    rng = np.random.default_rng(1)
    x = rng.normal(size=100).astype(np.float32)
    np.testing.assert_allclose(mapped.mvm(x), x @ weights,
                               rtol=1e-3, atol=1e-3)


def test_mvm_batch_matches_numpy(weights):
    mapped = MappedMatrix(weights)
    rng = np.random.default_rng(2)
    x = rng.normal(size=(7, 100)).astype(np.float32)
    np.testing.assert_allclose(combine(x, mapped), x @ weights,
                               rtol=1e-3, atol=1e-3)


def test_zero_segments_skip_activations(weights):
    mapped = MappedMatrix(weights)
    before = mapped.stats().mvm_reads
    x = np.zeros(100, dtype=np.float32)
    x[:4] = 1.0  # only the first row tile has non-zero input
    mapped.mvm(x)
    delta = mapped.stats().mvm_reads - before
    assert delta == mapped.plan.col_tiles  # one activation per col tile


def test_program_latency_is_serial_per_crossbar(weights):
    mapped = MappedMatrix(weights)
    # Busiest tile programs min(rows, 64) rows serially.
    expected = 64 * DEFAULT_CONFIG.row_write_latency_ns
    assert mapped.program_latency_ns == pytest.approx(expected)


def test_rewrite_rows_updates_values_and_cost(weights):
    mapped = MappedMatrix(weights)
    rows = np.array([0, 1, 70])
    new = np.zeros((3, 48), dtype=np.float32)
    latency = mapped.rewrite_rows(rows, new)
    resident = mapped.resident_matrix()
    np.testing.assert_allclose(resident[rows], 0.0)
    np.testing.assert_allclose(resident[2], weights[2], rtol=1e-6)
    # Busiest row tile got 2 rows (ids 0 and 1) -> 2 serial writes.
    assert latency == pytest.approx(
        2 * DEFAULT_CONFIG.row_write_latency_ns,
    )


def test_rewrite_validation(weights):
    mapped = MappedMatrix(weights)
    with pytest.raises(MappingError):
        mapped.rewrite_rows(np.array([0]), np.zeros((1, 5)))
    with pytest.raises(MappingError):
        mapped.rewrite_rows(np.array([200]), np.zeros((1, 48)))


def test_mvm_input_length_checked(weights):
    mapped = MappedMatrix(weights)
    with pytest.raises(MappingError):
        mapped.mvm(np.zeros(99))
    with pytest.raises(MappingError):
        MappedMatrix(np.zeros((0, 3)))


def test_aggregate_matches_adjacency_matmul():
    graph = dc_sbm_graph(48, 2, 4.0, random_state=0)
    rng = np.random.default_rng(3)
    features = rng.normal(size=(48, 8)).astype(np.float32)
    mapped = MappedMatrix(features)
    hardware_sums = aggregate(graph, mapped)
    reference = graph.adjacency_matmul(features)
    np.testing.assert_allclose(hardware_sums, reference,
                               rtol=1e-3, atol=1e-3)


def test_aggregate_edge_serial_cost():
    graph = dc_sbm_graph(48, 2, 4.0, random_state=0)
    features = np.ones((48, 8), dtype=np.float32)
    mapped = MappedMatrix(features)
    before = mapped.stats().mvm_reads
    aggregate(graph, mapped)
    activations = mapped.stats().mvm_reads - before
    # One activation per directed edge (times the single col tile).
    assert activations == graph.num_arcs


def test_aggregate_subset_of_vertices():
    graph = dc_sbm_graph(48, 2, 4.0, random_state=0)
    rng = np.random.default_rng(4)
    features = rng.normal(size=(48, 8)).astype(np.float32)
    mapped = MappedMatrix(features)
    subset = np.array([0, 5, 11])
    out = aggregate(graph, mapped, vertices=subset)
    reference = graph.adjacency_matmul(features)[subset]
    np.testing.assert_allclose(out, reference, rtol=1e-3, atol=1e-3)


def test_aggregate_wrong_graph_size():
    graph = dc_sbm_graph(48, 2, 4.0, random_state=0)
    mapped = MappedMatrix(np.ones((30, 8), dtype=np.float32))
    with pytest.raises(MappingError):
        aggregate(graph, mapped)
