"""Functional GCN-on-crossbars: numerics vs the numpy model, cost counts."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.gcn.model import GCN
from repro.graphs.generators import dc_sbm_graph
from repro.hardware.functional_gcn import FunctionalGCN


@pytest.fixture(scope="module")
def graph():
    return dc_sbm_graph(40, 2, 4.0, random_state=0, feature_dim=8)


@pytest.fixture(scope="module")
def model():
    return GCN([(8, 12), (12, 4)], random_state=1)


def test_matches_numpy_model(graph, model):
    hardware = FunctionalGCN(model)
    features = graph.features
    hw_out = hardware.forward(graph, features)
    sw_out, _ = model.forward(graph, features)
    np.testing.assert_allclose(hw_out, sw_out, rtol=1e-2, atol=1e-2)


def test_quantized_close_to_exact(graph, model):
    from repro.hardware.config import DEFAULT_CONFIG

    cfg = DEFAULT_CONFIG.scaled(weight_bits=8)
    exact = FunctionalGCN(model, config=cfg).forward(graph, graph.features)
    quant = FunctionalGCN(model, config=cfg, quantize=True).forward(
        graph, graph.features,
    )
    # Quantisation error stays small relative to the output scale.
    scale = np.abs(exact).mean() + 1e-6
    assert np.abs(quant - exact).mean() < 0.2 * scale


def test_noise_perturbs_output(graph, model):
    clean = FunctionalGCN(model).forward(graph, graph.features)
    noisy = FunctionalGCN(model, read_noise_sigma=0.05).forward(
        graph, graph.features,
    )
    assert not np.allclose(clean, noisy)
    # But stays in the same ballpark.
    scale = np.abs(clean).mean() + 1e-6
    assert np.abs(noisy - clean).mean() < 0.5 * scale


def test_event_counts_match_analytic_structure(graph, model):
    hardware = FunctionalGCN(model)
    hardware.forward(graph, graph.features)
    stats = hardware.stats()
    n = graph.num_vertices
    # Aggregation fires one activation per directed edge per layer (per
    # col tile — both layers' grids have one here); Combination streams
    # one row per vertex per layer.
    expected_edge_activations = graph.num_arcs * model.num_layers
    expected_co_streams = n * model.num_layers
    assert stats.mvm_reads == expected_edge_activations + expected_co_streams
    # Feature grids were programmed once per layer: n rows each.
    assert stats.row_writes >= n * model.num_layers


def test_total_crossbars(graph, model):
    hardware = FunctionalGCN(model)
    hardware.forward(graph, graph.features)
    assert hardware.total_crossbars() >= 2 + 2  # weights + feature grids


def test_shape_validation(graph, model):
    hardware = FunctionalGCN(model)
    with pytest.raises(TrainingError):
        hardware.forward(graph, graph.features[:, :4])
    with pytest.raises(TrainingError):
        hardware.forward(graph, graph.features[:10])
