"""Bit-for-bit equivalence of the vectorized functional hardware paths.

The perf PR rebuilt ``Crossbar.mvm_batch`` / ``MappedMatrix.mvm_batch``,
added batched row reads, and replaced the per-edge one-hot aggregation
with a CSR-segment gather — all promising *exact* equality with the
retained ``*_reference`` loops: same outputs, same seeded noise stream
consumption, same ``CrossbarStats`` counters.  These tests pin that
contract on seeded small problems, noise and quantisation on and off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MappingError
from repro.gcn.model import GCN
from repro.graphs.generators import dc_sbm_graph
from repro.hardware.engine import (
    MappedMatrix,
    aggregate,
    aggregate_reference,
    segment_leftfold_sum,
)
from repro.hardware.functional_gcn import FunctionalGCN


def _stats_tuple(stats):
    return (stats.mvm_reads, stats.row_writes, stats.busy_ns)


def _graph(n=120, seed=3):
    return dc_sbm_graph(
        num_vertices=n, num_communities=3, avg_degree=6.0,
        random_state=seed, name="vec-equiv",
    )


@pytest.mark.parametrize("quantize", [False, True])
@pytest.mark.parametrize("sigma", [0.0, 0.05])
class TestMvmBatchEquivalence:
    def test_outputs_and_stats_match_reference(self, quantize, sigma):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((150, 40)).astype(np.float32)
        inputs = rng.standard_normal((23, 150)).astype(np.float32)
        inputs[4] = 0.0           # a fully zero input row
        inputs[:, 64:128] = 0.0   # a fully zero row-tile segment
        vec = MappedMatrix(matrix, quantize=quantize,
                           read_noise_sigma=sigma, random_state=9)
        ref = MappedMatrix(matrix, quantize=quantize,
                           read_noise_sigma=sigma, random_state=9)
        out_vec = vec.mvm_batch(inputs)
        out_ref = ref.mvm_batch_reference(inputs)
        assert np.array_equal(out_vec, out_ref)
        assert _stats_tuple(vec.stats()) == _stats_tuple(ref.stats())

    def test_repeated_batches_consume_same_stream(self, quantize, sigma):
        # Stream position must advance identically, so a *second* batch
        # also matches (catches off-by-one noise draws in the first).
        rng = np.random.default_rng(1)
        matrix = rng.standard_normal((70, 33)).astype(np.float32)
        inputs = rng.standard_normal((11, 70)).astype(np.float32)
        vec = MappedMatrix(matrix, quantize=quantize,
                           read_noise_sigma=sigma, random_state=2)
        ref = MappedMatrix(matrix, quantize=quantize,
                           read_noise_sigma=sigma, random_state=2)
        vec.mvm_batch(inputs)
        ref.mvm_batch_reference(inputs)
        assert np.array_equal(
            vec.mvm_batch(inputs * 2.0),
            ref.mvm_batch_reference(inputs * 2.0),
        )


class TestReadRows:
    def test_matches_one_hot_mvm_sequence(self):
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((130, 20)).astype(np.float32)
        vec = MappedMatrix(matrix, read_noise_sigma=0.04, random_state=5)
        ref = MappedMatrix(matrix, read_noise_sigma=0.04, random_state=5)
        ids = np.array([0, 129, 64, 64, 3, 77], dtype=np.int64)
        got = vec.read_rows(ids)
        expected = np.stack([
            ref.mvm(np.eye(130, dtype=np.float32)[i]) for i in ids
        ])
        assert np.array_equal(got, expected)
        assert _stats_tuple(vec.stats()) == _stats_tuple(ref.stats())

    def test_empty_ids(self):
        matrix = np.ones((10, 4), dtype=np.float32)
        mapped = MappedMatrix(matrix)
        out = mapped.read_rows(np.array([], dtype=np.int64))
        assert out.shape == (0, 4)

    def test_out_of_range_ids_rejected(self):
        mapped = MappedMatrix(np.ones((10, 4), dtype=np.float32))
        with pytest.raises(MappingError):
            mapped.read_rows(np.array([10]))
        with pytest.raises(MappingError):
            mapped.read_rows(np.array([-1]))


class TestSegmentLeftfoldSum:
    def test_matches_sequential_python_fold(self):
        rng = np.random.default_rng(3)
        rows = rng.standard_normal((50, 7)).astype(np.float32)
        indptr = np.array([0, 4, 4, 17, 50], dtype=np.int64)
        initial = rng.standard_normal((4, 7)).astype(np.float32)
        got = segment_leftfold_sum(indptr, rows, initial)
        for i in range(4):
            acc = initial[i].copy()
            for j in range(indptr[i], indptr[i + 1]):
                acc += rows[j]
            assert np.array_equal(got[i], acc)

    def test_initial_not_mutated(self):
        rows = np.ones((3, 2), dtype=np.float32)
        initial = np.zeros((1, 2), dtype=np.float32)
        segment_leftfold_sum(np.array([0, 3]), rows, initial)
        assert np.array_equal(initial, np.zeros((1, 2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MappingError):
            segment_leftfold_sum(
                np.array([0, 1]), np.ones((1, 2), dtype=np.float32),
                np.zeros((2, 2), dtype=np.float32),
            )


class TestAggregateEquivalence:
    @pytest.mark.parametrize("sigma", [0.0, 0.03])
    def test_full_graph(self, sigma):
        graph = _graph()
        rng = np.random.default_rng(4)
        features = rng.standard_normal(
            (graph.num_vertices, 18)
        ).astype(np.float32)
        vec = MappedMatrix(features, read_noise_sigma=sigma, random_state=6)
        ref = MappedMatrix(features, read_noise_sigma=sigma, random_state=6)
        assert np.array_equal(
            aggregate(graph, vec), aggregate_reference(graph, ref),
        )
        assert _stats_tuple(vec.stats()) == _stats_tuple(ref.stats())

    def test_vertex_subset_with_duplicates_and_isolated(self):
        graph = _graph()
        degrees = graph.degrees
        isolated = int(np.argmin(degrees))  # lowest-degree vertex
        subset = np.array(
            [5, isolated, 0, graph.num_vertices - 1, 5], dtype=np.int64,
        )
        rng = np.random.default_rng(5)
        features = rng.standard_normal(
            (graph.num_vertices, 9)
        ).astype(np.float32)
        vec = MappedMatrix(features, read_noise_sigma=0.02, random_state=8)
        ref = MappedMatrix(features, read_noise_sigma=0.02, random_state=8)
        got = aggregate(graph, vec, subset)
        expected = aggregate_reference(graph, ref, subset)
        assert got.shape == (subset.size, 9)
        assert np.array_equal(got, expected)
        assert _stats_tuple(vec.stats()) == _stats_tuple(ref.stats())


class TestFunctionalForwardEquivalence:
    @pytest.mark.parametrize("quantize,sigma", [
        (False, 0.0), (True, 0.0), (False, 0.05), (True, 0.05),
    ])
    def test_forward_bit_identical(self, quantize, sigma):
        graph = _graph(n=90, seed=7)
        rng = np.random.default_rng(6)
        features = rng.standard_normal(
            (graph.num_vertices, 12)
        ).astype(np.float32)
        model = GCN([(12, 10), (10, 6)], random_state=1)
        vec = FunctionalGCN(model, quantize=quantize,
                            read_noise_sigma=sigma, random_state=13,
                            vectorized=True)
        ref = FunctionalGCN(model, quantize=quantize,
                            read_noise_sigma=sigma, random_state=13,
                            vectorized=False)
        out_vec = vec.forward(graph, features)
        out_ref = ref.forward(graph, features)
        assert np.array_equal(out_vec, out_ref)
        assert _stats_tuple(vec.stats()) == _stats_tuple(ref.stats())

    def test_phase_times_accumulate(self):
        graph = _graph(n=60, seed=9)
        rng = np.random.default_rng(7)
        features = rng.standard_normal(
            (graph.num_vertices, 8)
        ).astype(np.float32)
        model = GCN([(8, 6)], random_state=2)
        functional = FunctionalGCN(model, random_state=3)
        assert functional.phase_times_s == {
            "combination": 0.0, "program": 0.0, "aggregation": 0.0,
        }
        functional.forward(graph, features)
        times = functional.phase_times_s
        assert set(times) == {"combination", "program", "aggregation"}
        assert all(t >= 0.0 for t in times.values())
        assert sum(times.values()) > 0.0
