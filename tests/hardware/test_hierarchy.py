"""Chip/pool resource accounting."""

import pytest

from repro.errors import AllocationError
from repro.hardware.config import DEFAULT_CONFIG
from repro.hardware.hierarchy import Chip, CrossbarPool, ProcessingElement, Tile


def test_structure_counts():
    pe = ProcessingElement(DEFAULT_CONFIG)
    tile = Tile(DEFAULT_CONFIG)
    assert pe.num_crossbars == 32
    assert tile.num_pes == 8
    assert tile.num_crossbars == 256


def test_pool_size_and_validation():
    pool = CrossbarPool("AG1", crossbars_per_replica=128, replicas=3)
    assert pool.size == 384
    with pytest.raises(AllocationError):
        CrossbarPool("x", 0)
    with pytest.raises(AllocationError):
        CrossbarPool("x", 1, replicas=0)


def test_pool_idle_fraction():
    pool = CrossbarPool("CO1", 32)
    pool.stats.busy_ns = 25.0
    assert pool.busy_fraction(100.0) == pytest.approx(0.25)
    assert pool.idle_fraction(100.0) == pytest.approx(0.75)
    assert pool.idle_fraction(0.0) == 1.0
    pool.stats.busy_ns = 500.0  # clamped
    assert pool.busy_fraction(100.0) == 1.0


def test_chip_reserve_and_budget(small_config):
    chip = Chip(small_config)
    total = chip.total_crossbars
    pool = chip.reserve("AG1", crossbars_per_replica=64, replicas=2)
    assert chip.reserved_crossbars == 128
    assert chip.free_crossbars == total - 128
    assert chip.utilization() == pytest.approx(128 / total)
    assert chip.pools["AG1"] is pool


def test_chip_over_reserve_rejected(small_config):
    chip = Chip(small_config)
    with pytest.raises(AllocationError):
        chip.reserve("huge", chip.total_crossbars + 1)
    with pytest.raises(AllocationError):
        chip.reserve("a", 10)
        chip.reserve("a", 10)  # duplicate name


def test_grow_replicas(small_config):
    chip = Chip(small_config)
    chip.reserve("AG1", 10, replicas=1)
    chip.grow_replicas("AG1", 2)
    assert chip.pools["AG1"].replicas == 3
    assert chip.reserved_crossbars == 30
    with pytest.raises(AllocationError):
        chip.grow_replicas("AG1", chip.total_crossbars)
    with pytest.raises(AllocationError):
        chip.grow_replicas("missing", 1)


def test_release(small_config):
    chip = Chip(small_config)
    chip.reserve("a", 10)
    chip.reserve("b", 20)
    chip.release("a")
    assert chip.reserved_crossbars == 20
    chip.release_all()
    assert chip.reserved_crossbars == 0
    with pytest.raises(AllocationError):
        chip.release("a")
