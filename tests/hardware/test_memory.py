"""Global buffer and off-chip channel."""

import pytest

from repro.errors import ConfigError
from repro.hardware.memory import GlobalBuffer, OffChipMemory, TrafficRecord


def test_buffer_staging_chunks():
    buf = GlobalBuffer(capacity_bytes=1024)
    assert buf.stage(100) == 1
    assert buf.stage(1024) == 1
    assert buf.stage(1025) == 2
    assert buf.traffic.buffer_bytes == pytest.approx(100 + 1024 + 1025)
    with pytest.raises(ConfigError):
        buf.stage(-1)
    with pytest.raises(ConfigError):
        GlobalBuffer(capacity_bytes=0)


def test_default_buffer_is_128kb():
    assert GlobalBuffer().capacity_bytes == 128 * 1024


def test_offchip_latency_and_traffic():
    mem = OffChipMemory()
    # 64 GB/s == 64 bytes/ns.
    assert mem.transfer_latency_ns(64.0) == pytest.approx(1.0)
    latency = mem.transfer(6400.0)
    assert latency == pytest.approx(100.0)
    assert mem.traffic.offchip_bytes == pytest.approx(6400.0)
    with pytest.raises(ConfigError):
        mem.transfer(-1.0)


def test_traffic_record_merge():
    a = TrafficRecord(buffer_bytes=10, offchip_bytes=20)
    a.merge(TrafficRecord(buffer_bytes=1, offchip_bytes=2))
    assert a.buffer_bytes == 11 and a.offchip_bytes == 22
