"""Mesh NoC model."""

import pytest

from repro.errors import ConfigError
from repro.hardware.config import DEFAULT_CONFIG
from repro.hardware.noc import MeshNoc, NocConfig


def test_mesh_side_from_tiles():
    noc = MeshNoc()
    assert noc.side == 256  # sqrt(65536)


def test_hop_distance():
    noc = MeshNoc()
    assert noc.hops_between(0, 0) == 0
    assert noc.hops_between(0, 1) == 1
    assert noc.hops_between(0, noc.side) == 1  # one row down
    assert noc.hops_between(0, noc.side + 1) == 2


def test_tile_coordinates_bounds():
    noc = MeshNoc()
    with pytest.raises(ConfigError):
        noc.tile_coordinates(noc.side ** 2)
    with pytest.raises(ConfigError):
        noc.tile_coordinates(-1)


def test_average_hops_formula():
    noc = MeshNoc()
    n = noc.side
    assert noc.average_hops() == pytest.approx(2 * (n * n - 1) / (3 * n))


def test_transfer_latency_components():
    cfg = NocConfig(hop_latency_ns=2.0, link_bandwidth_bytes_per_ns=16.0)
    noc = MeshNoc(config=cfg)
    # 3 hops head latency + 64 bytes serialisation at 16 B/ns.
    assert noc.transfer_latency_ns(64.0, 3) == pytest.approx(6.0 + 4.0)


def test_transfer_energy_scales():
    noc = MeshNoc()
    one = noc.transfer_energy_pj(100.0, 2)
    assert one == pytest.approx(
        100.0 * 2 * noc.config.hop_energy_pj_per_byte,
    )
    assert noc.transfer_energy_pj(200.0, 2) == pytest.approx(2 * one)


def test_stage_handoff_grows_with_footprint():
    noc = MeshNoc()
    small_lat, small_e = noc.stage_handoff_cost(1024.0, crossbars_involved=32)
    big_lat, big_e = noc.stage_handoff_cost(
        1024.0, crossbars_involved=64 * DEFAULT_CONFIG.crossbars_per_tile,
    )
    assert big_lat >= small_lat
    assert big_e >= small_e


def test_validation():
    with pytest.raises(ConfigError):
        NocConfig(hop_latency_ns=0.0)
    with pytest.raises(ConfigError):
        NocConfig(flit_bytes=0)
    noc = MeshNoc()
    with pytest.raises(ConfigError):
        noc.transfer_latency_ns(-1.0, 1)
    with pytest.raises(ConfigError):
        noc.stage_handoff_cost(10.0, 0)
