"""Cross-module integration: the full GoPIM flow on real(istic) workloads."""

import numpy as np
import pytest

from repro import GoPIMSystem, workload_from_dataset
from repro.accelerators.catalog import gopim, serial
from repro.graphs.datasets import load_dataset
from repro.hardware.crossbar import Crossbar
from repro.mapping.tiling import plan_tiling
from repro.pipeline.simulator import ScheduleMode, simulate_pipeline
from repro.predictor.dataset import generate_dataset
from repro.predictor.predictor import PerKindRegressor, TimePredictor
from repro.predictor.regressors import LinearRegressor
from repro.runtime import default_session
from repro.stages.latency import StageTimingModel


def experiment_config():
    return default_session().config


@pytest.fixture(scope="module")
def predictor():
    ds = generate_dataset(num_samples=400, random_state=0)
    return TimePredictor(PerKindRegressor(LinearRegressor)).fit(ds)


def test_full_gopim_flow_on_cora(predictor):
    config = experiment_config()
    system = GoPIMSystem(config=config, predictor=predictor)
    workload = workload_from_dataset("cora", random_state=0)

    plan = system.plan(workload)
    assert plan.theta == 0.8  # Cora is sparse
    report = system.simulate(workload)
    base = serial().run(workload, config)
    assert base.total_time_ns / report.total_time_ns > 10.0
    assert base.energy_pj / report.energy_pj > 1.0


def test_timing_model_agrees_with_pipeline_sim(predictor):
    # Eq. (6) with heterogeneous per-micro-batch times equals the
    # event-driven simulation the accelerators run.
    workload = workload_from_dataset("cora", random_state=0)
    timing = StageTimingModel(workload)
    times = np.array([
        [timing.microbatch_time_ns(s, mb, 1)
         for mb in range(workload.num_microbatches)]
        for s in timing.stages
    ])
    result = simulate_pipeline(times, ScheduleMode.INTRA_INTER)
    # Sanity: uniformised closed form brackets the heterogeneous makespan.
    uniform_upper = times.max(axis=1).sum() + (
        (workload.num_microbatches - 1) * times.max()
    )
    assert result.total_time_ns <= uniform_upper + 1e-6


def test_crossbar_functional_mvm_matches_gcn_combination():
    # Program a weight matrix on tiled crossbars and check the MVM result
    # matches numpy for the Combination stage's math.
    rng = np.random.default_rng(0)
    d_in, d_out = 100, 40
    weights = rng.normal(size=(d_in, d_out)).astype(np.float32)
    plan = plan_tiling(d_in, d_out)
    crossbars = [
        [Crossbar() for _ in range(plan.col_tiles)]
        for _ in range(plan.row_tiles)
    ]
    for r in range(plan.row_tiles):
        for c in range(plan.col_tiles):
            block = weights[
                r * 64:(r + 1) * 64,
                c * 32:(c + 1) * 32,
            ]
            crossbars[r][c].program(block)
    x = rng.normal(size=d_in).astype(np.float32)
    out = np.zeros(d_out, dtype=np.float32)
    for r in range(plan.row_tiles):
        seg = x[r * 64:(r + 1) * 64]
        for c in range(plan.col_tiles):
            width = min(32, d_out - c * 32)
            out[c * 32:c * 32 + width] += crossbars[r][c].mvm(seg)[:width]
    np.testing.assert_allclose(out, x @ weights, rtol=1e-3, atol=1e-3)


def test_gopim_trains_with_acceptable_accuracy(predictor):
    config = experiment_config()
    system = GoPIMSystem(config=config, predictor=predictor)
    graph = load_dataset("arxiv", random_state=0, scale=0.5)
    full = system.train(graph, task="node", epochs=12)
    assert full.best_test_metric > 0.5


def test_report_replicas_match_allocation(predictor):
    config = experiment_config()
    workload = workload_from_dataset("cora", random_state=0)
    report = gopim(time_predictor=predictor).run(workload, config)
    np.testing.assert_array_equal(
        report.replicas, report.allocation.replicas,
    )
    cost = (
        report.replicas * report.allocation.problem.crossbars_per_replica
    ).sum()
    assert report.crossbars_reserved == cost
    assert cost <= config.total_crossbars
