"""Vectorized interleaved dealer vs the original dealing loop.

The vectorized form relies on a dead-code proof: pure round-robin dealing
never encounters a full crossbar (crossbar ``j``'s capacity probe lands at
deal position ``>= rows * C >= N``, past the end), so the occupancy
bookkeeping in the reference can be replaced by ``i mod C`` / ``i div C``
arithmetic on the concatenated shuffled scopes.  The per-scope permutation
draws stay separate RNG calls, so the streams line up and the mappings
must be *byte-identical* — asserted here across shapes that stress every
edge of the proof (N not divisible by rows, one scope, fewer scopes than
rows, trailing partial scope).
"""

import numpy as np
import pytest

from repro.graphs.generators import dc_sbm_graph
from repro.mapping.vertex_map import (
    interleaved_mapping,
    interleaved_mapping_reference,
)


@pytest.mark.parametrize("num_vertices,rows,scopes,seed", [
    (256, 64, None, 0),    # default: scopes == rows, exact fill
    (250, 64, None, 1),    # N not divisible by rows
    (240, 16, 1, 2),       # single scope (one global shuffle)
    (240, 16, 4, 3),       # fewer scopes than rows
    (240, 16, 7, 4),       # scope size doesn't divide N
    (33, 64, None, 5),     # fewer vertices than one crossbar
    (65, 64, 13, 6),       # one full crossbar plus one vertex
])
def test_byte_identical_to_reference(num_vertices, rows, scopes, seed):
    graph = dc_sbm_graph(
        num_vertices, max(2, num_vertices // 100), 6.0,
        random_state=seed, feature_dim=4,
    )
    vec = interleaved_mapping(
        graph, rows_per_crossbar=rows, num_scopes=scopes, random_state=seed,
    )
    ref = interleaved_mapping_reference(
        graph, rows_per_crossbar=rows, num_scopes=scopes, random_state=seed,
    )
    np.testing.assert_array_equal(vec.crossbar_of, ref.crossbar_of)
    np.testing.assert_array_equal(vec.wordline_of, ref.wordline_of)
    assert vec.num_crossbars == ref.num_crossbars
    assert vec.rows_per_crossbar == ref.rows_per_crossbar
    assert vec.strategy == ref.strategy == "interleaved"


def test_capacity_never_exceeded_on_awkward_shapes():
    for num_vertices, rows in [(100, 7), (101, 7), (7, 7), (8, 7)]:
        graph = dc_sbm_graph(
            num_vertices, 2, 4.0, random_state=9, feature_dim=4,
        )
        mapping = interleaved_mapping(graph, rows_per_crossbar=rows)
        counts = np.bincount(
            mapping.crossbar_of, minlength=mapping.num_crossbars,
        )
        assert counts.max() <= rows
        # Wordlines are unique within each crossbar.
        slots = mapping.crossbar_of * rows + mapping.wordline_of
        assert np.unique(slots).size == num_vertices


def test_seed_changes_mapping_but_not_balance():
    graph = dc_sbm_graph(256, 2, 6.0, random_state=0, feature_dim=4)
    a = interleaved_mapping(graph, 16, random_state=0)
    b = interleaved_mapping(graph, 16, random_state=1)
    assert not np.array_equal(a.crossbar_of, b.crossbar_of)
    counts_a = np.bincount(a.crossbar_of, minlength=a.num_crossbars)
    counts_b = np.bincount(b.crossbar_of, minlength=b.num_crossbars)
    np.testing.assert_array_equal(np.sort(counts_a), np.sort(counts_b))
