"""Selective updating: OSU vs ISU write cycles, adaptive theta, schedules."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.graphs.datasets import load_dataset
from repro.mapping.selective import (
    DENSE_THETA,
    SPARSE_THETA,
    UpdatePlan,
    adaptive_theta,
    build_update_plan,
)


def test_adaptive_theta_matches_paper(small_graph, tiny_graph):
    # small_graph avg degree ~10 (dense); tiny avg 2 (sparse).
    assert adaptive_theta(small_graph) == DENSE_THETA
    assert adaptive_theta(tiny_graph) == SPARSE_THETA


def test_full_plan_updates_everyone(small_graph):
    plan = build_update_plan(small_graph, "full")
    assert plan.theta == 1.0
    assert plan.num_important == small_graph.num_vertices
    np.testing.assert_array_equal(
        plan.vertices_updated_at(3), np.arange(small_graph.num_vertices),
    )


def test_selective_schedule(small_graph):
    plan = build_update_plan(small_graph, "isu", theta=0.25, minor_period=10)
    assert plan.num_important == round(0.25 * small_graph.num_vertices)
    assert plan.is_update_epoch_for_minor(0)
    assert not plan.is_update_epoch_for_minor(1)
    assert plan.is_update_epoch_for_minor(10)
    assert plan.vertices_updated_at(0).size == small_graph.num_vertices
    assert plan.vertices_updated_at(5).size == plan.num_important


def test_important_are_top_degree(small_graph):
    plan = build_update_plan(small_graph, "isu", theta=0.2)
    threshold = np.sort(small_graph.degrees)[::-1][plan.num_important - 1]
    assert small_graph.degrees[plan.important].min() >= threshold


def test_isu_reduces_write_cycles_osu_does_not():
    # The Fig. 7 mechanism at dataset scale: high-degree vertices crowd
    # low-index crossbars, so OSU's busiest crossbar stays full while
    # ISU's shrinks by ~theta.
    graph = load_dataset("ddi", random_state=0)
    full = build_update_plan(graph, "full")
    osu = build_update_plan(graph, "osu", theta=0.5)
    isu = build_update_plan(graph, "isu", theta=0.5)
    full_cycles = full.average_write_cycles()
    assert osu.average_write_cycles() > 0.9 * full_cycles
    assert isu.average_write_cycles() < 0.7 * full_cycles


def test_write_cycles_at_full_round(small_graph):
    plan = build_update_plan(small_graph, "isu", theta=0.5)
    full_round = plan.write_cycles_at(0)
    partial = plan.write_cycles_at(1)
    assert partial <= full_round


def test_rows_written_per_epoch(small_graph):
    n = small_graph.num_vertices
    plan = build_update_plan(small_graph, "isu", theta=0.5, minor_period=20)
    k = plan.num_important
    expected = (n + 19 * k) / 20
    assert plan.rows_written_per_epoch() == pytest.approx(expected)


def test_build_plan_validation(small_graph):
    with pytest.raises(MappingError):
        build_update_plan(small_graph, "bogus")
    with pytest.raises(MappingError):
        build_update_plan(small_graph, "isu", theta=2.0)
    with pytest.raises(MappingError):
        build_update_plan(small_graph, "isu", minor_period=0)


def test_full_strategy_overrides_selective(small_graph):
    plan = build_update_plan(small_graph, "full", theta=0.1)
    assert plan.theta == 1.0


def test_plan_mapping_consistency(small_graph):
    isu = build_update_plan(small_graph, "isu")
    assert isu.mapping.strategy == "interleaved"
    osu = build_update_plan(small_graph, "osu")
    assert osu.mapping.strategy == "index"
