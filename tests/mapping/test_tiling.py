"""Matrix tiling onto crossbars."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.hardware.config import DEFAULT_CONFIG
from repro.mapping.tiling import crossbars_for_matrix, plan_tiling


def test_small_matrix_single_crossbar():
    plan = plan_tiling(64, 32)
    assert plan.row_tiles == 1 and plan.col_tiles == 1
    assert plan.num_crossbars == 1


def test_table_vi_combination_stage():
    # 256x256 weight matrix -> 32 crossbars (ddi CO stages in Table VI).
    plan = plan_tiling(256, 256)
    assert plan.row_tiles == 4
    assert plan.col_tiles == 8
    assert plan.num_crossbars == 32


def test_table_vi_aggregation_stage():
    # ddi's 4267x256 feature matrix -> 536-crossbar grid (paper: ~534 by
    # pure capacity division).
    assert crossbars_for_matrix(4267, 256) == 536


def test_ragged_edges_round_up():
    plan = plan_tiling(65, 33)
    assert plan.row_tiles == 2
    assert plan.col_tiles == 2


def test_capacity_covers_matrix():
    plan = plan_tiling(100, 50)
    assert plan.values_capacity >= 100 * 50


def test_validation():
    with pytest.raises(MappingError):
        plan_tiling(0, 5)
    with pytest.raises(MappingError):
        plan_tiling(5, 0)


@given(
    rows=st.integers(1, 5000),
    cols=st.integers(1, 2000),
)
@settings(max_examples=100, deadline=None)
def test_tiling_invariants(rows, cols):
    cfg = DEFAULT_CONFIG
    plan = plan_tiling(rows, cols, cfg)
    # Tiles exactly cover the matrix with no underflow.
    assert (plan.row_tiles - 1) * cfg.crossbar_rows < rows
    assert plan.row_tiles * cfg.crossbar_rows >= rows
    assert (plan.col_tiles - 1) * cfg.logical_cols < cols
    assert plan.col_tiles * cfg.logical_cols >= cols
    assert plan.num_crossbars == plan.row_tiles * plan.col_tiles
    assert plan.values_capacity >= rows * cols
