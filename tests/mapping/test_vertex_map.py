"""Vertex mapping strategies: index vs interleaved (Fig. 6 mechanism)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.graphs.datasets import load_dataset
from repro.graphs.generators import dc_sbm_graph
from repro.graphs.datasets import relabel_by_noisy_degree
from repro.mapping.vertex_map import index_mapping, interleaved_mapping


def test_index_mapping_layout():
    mapping = index_mapping(10, rows_per_crossbar=4)
    assert mapping.num_crossbars == 3
    np.testing.assert_array_equal(
        mapping.crossbar_of, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2],
    )
    np.testing.assert_array_equal(
        mapping.wordline_of, [0, 1, 2, 3, 0, 1, 2, 3, 0, 1],
    )


def test_index_mapping_validation():
    with pytest.raises(MappingError):
        index_mapping(0)
    with pytest.raises(MappingError):
        index_mapping(5, rows_per_crossbar=0)


def test_interleaved_mapping_is_a_valid_assignment(small_graph):
    mapping = interleaved_mapping(small_graph, rows_per_crossbar=16)
    n = small_graph.num_vertices
    assert mapping.crossbar_of.shape == (n,)
    assert mapping.num_crossbars == -(-n // 16)
    assert mapping.crossbar_of.min() >= 0
    assert mapping.crossbar_of.max() < mapping.num_crossbars
    # Capacity respected: no crossbar holds more than its wordlines.
    counts = np.bincount(mapping.crossbar_of, minlength=mapping.num_crossbars)
    assert counts.max() <= 16


def test_interleaved_balances_degrees(small_graph):
    graph = relabel_by_noisy_degree(small_graph, random_state=0)
    indexed = index_mapping(graph.num_vertices, 16)
    interleaved = interleaved_mapping(graph, 16)
    idx_means = indexed.average_degree_per_crossbar(graph)
    int_means = interleaved.average_degree_per_crossbar(graph)
    # Interleaving shrinks the spread of per-crossbar mean degrees.
    assert int_means.std() < 0.5 * idx_means.std()


def test_fig06_spread_on_paper_dataset():
    graph = load_dataset("proteins", random_state=0)
    indexed = index_mapping(graph.num_vertices, 64)
    interleaved = interleaved_mapping(graph, 64)
    idx = indexed.average_degree_per_crossbar(graph)
    inter = interleaved.average_degree_per_crossbar(graph)
    idx_spread = idx.max() / max(idx.min(), 1e-9)
    int_spread = inter.max() / max(inter.min(), 1e-9)
    # Paper's Fig. 6: index mapping spreads are enormous (1.6..2266.8);
    # interleaved mapping flattens them.
    assert idx_spread > 5.0
    assert int_spread < idx_spread / 3


def test_rows_per_crossbar_for(small_graph):
    mapping = index_mapping(small_graph.num_vertices, 16)
    batch = np.arange(16)  # one full crossbar's worth of consecutive ids
    counts = mapping.rows_per_crossbar_for(batch)
    assert counts[0] == 16
    assert counts[1:].sum() == 0
    with pytest.raises(MappingError):
        mapping.rows_per_crossbar_for(np.array([10_000]))


def test_interleaved_spreads_consecutive_batches(small_graph):
    mapping = interleaved_mapping(small_graph, 16)
    batch = np.arange(16)
    counts = mapping.rows_per_crossbar_for(batch)
    # A consecutive-id batch lands on many crossbars, not one.
    assert counts.max() <= 4


def test_vertices_on(small_graph):
    mapping = interleaved_mapping(small_graph, 16)
    seen = np.concatenate([
        mapping.vertices_on(c) for c in range(mapping.num_crossbars)
    ])
    np.testing.assert_array_equal(
        np.sort(seen), np.arange(small_graph.num_vertices),
    )
    with pytest.raises(MappingError):
        mapping.vertices_on(mapping.num_crossbars)


def test_average_degree_requires_matching_graph(small_graph, tiny_graph):
    mapping = index_mapping(small_graph.num_vertices, 16)
    with pytest.raises(MappingError):
        mapping.average_degree_per_crossbar(tiny_graph)


@given(
    n=st.integers(2, 300),
    rows=st.sampled_from([4, 16, 64]),
)
@settings(max_examples=40, deadline=None)
def test_interleaved_partition_property(n, rows):
    graph = dc_sbm_graph(n, 2, min(6.0, n / 4), random_state=1)
    mapping = interleaved_mapping(graph, rows)
    # Every vertex mapped exactly once; capacity respected.
    counts = np.bincount(mapping.crossbar_of, minlength=mapping.num_crossbars)
    assert counts.sum() == n
    assert counts.max() <= rows
    assert mapping.num_crossbars == -(-n // rows)
