"""repro.perf: content keys, the two-tier cache, and the memo decorator."""

from __future__ import annotations

import dataclasses
import enum
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.graphs.generators import dc_sbm_graph
from repro.perf import (
    ENV_DISK_CACHE,
    ENV_DISK_CACHE_MAX_MB,
    ArtifactCache,
    CacheKeyError,
    cache_key,
    clear_cache,
    get_cache,
    memoized,
)


class Mode(enum.Enum):
    A = "a"
    B = "b"


@dataclasses.dataclass(frozen=True)
class Params:
    x: int
    y: float


class TestCacheKey:
    def test_deterministic_and_content_sensitive(self):
        assert cache_key(1, "a", 2.5) == cache_key(1, "a", 2.5)
        assert cache_key(1, "a") != cache_key(1, "b")
        assert cache_key(1) != cache_key(1.0)  # int vs float is content
        assert cache_key(True) != cache_key(1)

    def test_ndarray_keys_on_dtype_shape_and_bytes(self):
        a = np.arange(6, dtype=np.float32)
        assert cache_key(a) == cache_key(a.copy())
        assert cache_key(a) != cache_key(a.astype(np.float64))
        assert cache_key(a) != cache_key(a.reshape(2, 3))
        assert cache_key(a) != cache_key(a[::-1])

    def test_dict_order_does_not_matter(self):
        assert cache_key({"a": 1, "b": 2}) == cache_key({"b": 2, "a": 1})

    def test_enum_dataclass_and_fingerprint_objects(self):
        assert cache_key(Mode.A) == cache_key(Mode.A)
        assert cache_key(Mode.A) != cache_key(Mode.B)
        assert cache_key(Params(1, 2.0)) == cache_key(Params(1, 2.0))
        assert cache_key(Params(1, 2.0)) != cache_key(Params(1, 3.0))
        g1 = dc_sbm_graph(num_vertices=24, num_communities=2,
                          avg_degree=3.0, random_state=0)
        g2 = dc_sbm_graph(num_vertices=24, num_communities=2,
                          avg_degree=3.0, random_state=1)
        assert cache_key(g1) == cache_key(g1)
        assert cache_key(g1) != cache_key(g2)

    def test_unhashable_raises_instead_of_colliding(self):
        with pytest.raises(CacheKeyError):
            cache_key(object())


class TestArtifactCache:
    def test_hit_miss_accounting(self):
        cache = ArtifactCache(disk_dir="")
        calls = []

        def compute():
            calls.append(1)
            return "artifact"

        assert cache.get_or_compute("ns", "k", compute) == "artifact"
        assert cache.get_or_compute("ns", "k", compute) == "artifact"
        assert len(calls) == 1
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1
        assert cache.contains("ns", "k")
        assert not cache.contains("ns", "other")
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 0

    def test_namespaces_do_not_collide(self):
        cache = ArtifactCache(disk_dir="")
        cache.get_or_compute("ns1", "k", lambda: 1)
        assert cache.get_or_compute("ns2", "k", lambda: 2) == 2

    def test_disk_tier_round_trip(self, tmp_path):
        payload = {"arr": np.arange(5), "x": 3}
        writer = ArtifactCache(disk_dir=str(tmp_path))
        writer.get_or_compute("ns", "k", lambda: payload)
        # A fresh cache (fresh process stand-in) hits the disk tier.
        reader = ArtifactCache(disk_dir=str(tmp_path))
        got = reader.get_or_compute(
            "ns", "k", lambda: pytest.fail("should hit disk"),
        )
        assert reader.stats.disk_hits == 1
        np.testing.assert_array_equal(got["arr"], payload["arr"])

    def test_corrupt_disk_entry_recomputed(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        cache.get_or_compute("ns", "k", lambda: 1)
        (tmp_path / "ns" / "k.pkl").write_bytes(b"not a pickle")
        fresh = ArtifactCache(disk_dir=str(tmp_path))
        assert fresh.get_or_compute("ns", "k", lambda: 2) == 2

    def test_env_var_checked_at_call_time(self, tmp_path, monkeypatch):
        cache = ArtifactCache()
        monkeypatch.setenv(ENV_DISK_CACHE, str(tmp_path))
        cache.get_or_compute("ns", "k", lambda: "v")
        assert (tmp_path / "ns" / "k.pkl").exists()
        monkeypatch.delenv(ENV_DISK_CACHE)
        cache.get_or_compute("ns", "k2", lambda: "v2")
        assert not (tmp_path / "ns" / "k2.pkl").exists()

    def test_clear_disk(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        cache.get_or_compute("ns", "k", lambda: 1)
        cache.clear(disk=True)
        assert not list(tmp_path.rglob("*.pkl"))


class TestDefaultCacheAndDecorator:
    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()

    def test_memoized_decorator(self):
        calls = []

        @memoized("test-ns")
        def expensive(a, b=2):
            calls.append((a, b))
            return a * b

        assert expensive(3) == 6
        assert expensive(3) == 6
        assert expensive(3, b=4) == 12
        assert calls == [(3, 2), (3, 4)]
        assert expensive.__wrapped__(3) == 6  # bypasses the cache
        assert len(calls) == 3

    def test_clear_cache_resets_default(self):
        get_cache().get_or_compute("ns", "k", lambda: 1)
        assert get_cache().contains("ns", "k")
        clear_cache()
        assert not get_cache().contains("ns", "k")


def test_cross_process_determinism(tmp_path):
    """Keyed artifacts built in separate processes are identical.

    Two fresh interpreters generate the same dataset with a shared disk
    cache dir; the second must hit the first's entry, and the pickled
    artifact must equal a from-scratch build.
    """
    script = (
        "import sys, numpy as np\n"
        "from repro.graphs.datasets import load_dataset\n"
        "from repro.perf import get_cache\n"
        "g = load_dataset('cora', random_state=0)\n"
        "np.save(sys.argv[1], g.features)\n"
        "print(get_cache().stats.disk_hits)\n"
    )
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = {
        **os.environ,
        ENV_DISK_CACHE: str(tmp_path / "cache"),
        "PYTHONPATH": os.path.join(repo_root, "src"),
    }
    outs = []
    hits = []
    for tag in ("a", "b"):
        out = tmp_path / f"{tag}.npy"
        proc = subprocess.run(
            [sys.executable, "-c", script, str(out)],
            capture_output=True, text=True, check=True, env=env,
        )
        outs.append(np.load(out))
        hits.append(int(proc.stdout.strip().splitlines()[-1]))
    np.testing.assert_array_equal(outs[0], outs[1])
    assert hits[0] == 0     # first process built it
    assert hits[1] >= 1     # second process loaded it from disk


class TestDiskCap:
    def _fill(self, cache, count, payload_kb=64):
        blob = np.zeros(payload_kb * 1024 // 8)
        for i in range(count):
            cache.get_or_compute("ns", f"k{i}", lambda b=blob, i=i: (i, b))

    def test_lru_eviction_over_cap(self, tmp_path, monkeypatch):
        # ~64 KB per artifact, cap at ~0.2 MB: the oldest entries go.
        monkeypatch.setenv(ENV_DISK_CACHE_MAX_MB, "0.2")
        cache = ArtifactCache(disk_dir=str(tmp_path))
        self._fill(cache, 6)
        remaining = sorted(p.name for p in tmp_path.rglob("*.pkl"))
        assert 0 < len(remaining) < 6
        total = sum(p.stat().st_size for p in tmp_path.rglob("*.pkl"))
        assert total <= 0.2e6
        # The newest key always survives.
        assert "k5.pkl" in remaining

    def test_disk_hit_refreshes_recency(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_DISK_CACHE_MAX_MB, "0.2")
        cache = ArtifactCache(disk_dir=str(tmp_path))
        self._fill(cache, 3)
        # Backdate everything (k0 oldest), then re-read k0 from disk
        # through a fresh cache: the hit must bump its recency so the
        # next overflow evicts k1 — the stalest entry — instead.
        for age, name in enumerate(("k0", "k1", "k2")):
            os.utime(tmp_path / "ns" / f"{name}.pkl", (age, age))
        fresh = ArtifactCache(disk_dir=str(tmp_path))
        fresh.get_or_compute("ns", "k0", lambda: None)
        assert fresh.stats.disk_hits == 1
        fresh.get_or_compute(
            "ns", "k3", lambda: np.zeros(64 * 1024 // 8),
        )
        names = {p.name for p in tmp_path.rglob("*.pkl")}
        assert "k0.pkl" in names
        assert "k1.pkl" not in names

    def test_generous_default_keeps_everything(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_DISK_CACHE_MAX_MB, raising=False)
        cache = ArtifactCache(disk_dir=str(tmp_path))
        self._fill(cache, 6)
        assert len(list(tmp_path.rglob("*.pkl"))) == 6

    def test_bad_cap_value_falls_back_to_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_DISK_CACHE_MAX_MB, "not-a-number")
        cache = ArtifactCache(disk_dir=str(tmp_path))
        self._fill(cache, 4)
        assert len(list(tmp_path.rglob("*.pkl"))) == 4


class TestSpillToDisk:
    def test_spills_memory_entries_to_new_tier(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_DISK_CACHE, raising=False)
        cache = ArtifactCache()
        cache.get_or_compute("ns", "k", lambda: 41)
        monkeypatch.setenv(ENV_DISK_CACHE, str(tmp_path))
        assert cache.spill_to_disk() == 1
        reader = ArtifactCache(disk_dir=str(tmp_path))
        assert reader.get_or_compute("ns", "k", lambda: -1) == 41

    def test_existing_files_not_rewritten(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        cache.get_or_compute("ns", "k", lambda: 1)
        assert cache.spill_to_disk() == 0

    def test_noop_without_disk_tier(self, monkeypatch):
        monkeypatch.delenv(ENV_DISK_CACHE, raising=False)
        cache = ArtifactCache()
        cache.get_or_compute("ns", "k", lambda: 1)
        assert cache.spill_to_disk() == 0

    def test_unpicklable_entries_skipped(self, tmp_path):
        cache = ArtifactCache()
        cache.get_or_compute("ns", "bad", lambda: (lambda: None))
        cache._disk_dir = str(tmp_path)
        assert cache.spill_to_disk() == 0
