"""Fast-tier tolerance harness: per-kernel budgets + end-to-end invariants.

The relaxed-identity tier (MODEL.md section 11) promises each fast
kernel stays within its documented relative-error budget of the exact
path, and that whole experiments keep their *conclusions*: orderings,
decisions, and accuracies move by noise, not by sign.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.harness import (
    ensure_uniform_numerics,
    result_numerics,
)
from repro.gcn.batched import ReplicaSpec, train_replicas
from repro.gcn.losses import EdgeScatter
from repro.graphs.generators import dc_sbm_graph
from repro.graphs.sparsify import sparsify_by_degree
from repro.hardware.engine import segment_leftfold_sum, segment_reduceat_sum
from repro.mapping.selective import build_update_plan
from repro.perf import kernels
from repro.perf.cache import ArtifactCache
from repro.perf.kernels import ERROR_BUDGETS, KernelTuner, numerics
from repro.runtime.session import Session
from repro.runtime.spec import RunSpec


@pytest.fixture(autouse=True)
def _pristine_mode_and_tuner():
    previous_mode = kernels.set_numerics_mode("exact")
    previous_tuner = kernels.set_tuner(KernelTuner(ArtifactCache(disk_dir="")))
    yield
    kernels.set_numerics_mode(previous_mode)
    kernels.set_tuner(previous_tuner)


def rel_err(fast: np.ndarray, exact: np.ndarray) -> float:
    scale = max(float(np.max(np.abs(exact))), 1e-12)
    return float(np.max(np.abs(
        np.asarray(fast, dtype=np.float64) - np.asarray(exact, np.float64)
    ))) / scale


@pytest.fixture(scope="module")
def graph():
    return dc_sbm_graph(
        512, 3, 16.0, random_state=5, feature_dim=64,
        feature_noise=4.0, intra_ratio=0.7,
    )


# ----------------------------------------------------------------------
# Per-kernel budgets
# ----------------------------------------------------------------------
class TestKernelBudgets:
    def test_spmm_strategies_within_budget(self, graph):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(graph.num_vertices, 32)).astype(np.float32)
        exact = graph._normalized_matmul_exact(x)
        budget = ERROR_BUDGETS["spmm_normalized"]
        for name, strategy in kernels.strategies("spmm_normalized").items():
            out = strategy(graph, x)
            assert rel_err(out, exact) <= budget, name

    def test_fast_dispatch_within_budget(self, graph):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(graph.num_vertices, 16)).astype(np.float32)
        exact = graph.normalized_adjacency_matmul(x)
        with numerics("fast"):
            fast = graph.normalized_adjacency_matmul(x)
        assert rel_err(fast, exact) <= ERROR_BUDGETS["spmm_normalized"]

    def test_segment_fold_within_budget(self, graph):
        rng = np.random.default_rng(2)
        rows = rng.normal(size=(graph.num_arcs, 8)).astype(np.float32)
        init = rng.normal(
            size=(graph.num_vertices, 8)
        ).astype(np.float32)
        exact = segment_leftfold_sum(graph.indptr, rows, init)
        fast = segment_reduceat_sum(graph.indptr, rows, init)
        assert rel_err(fast, exact) <= ERROR_BUDGETS["segment_fold"]

    def test_segment_fold_handles_empty_segments(self):
        indptr = np.array([0, 0, 2, 2, 3], dtype=np.int64)
        rows = np.arange(6, dtype=np.float32).reshape(3, 2)
        init = np.ones((4, 2), dtype=np.float32)
        exact = segment_leftfold_sum(indptr, rows, init)
        fast = segment_reduceat_sum(indptr, rows, init)
        np.testing.assert_array_equal(fast, exact)

    def test_edge_scatter_float32_within_budget(self, graph):
        rng = np.random.default_rng(3)
        edges = graph.edge_list()[:256]
        rows = np.concatenate([edges[:, 0], edges[:, 1]])
        cols = np.concatenate([edges[:, 1], edges[:, 0]])
        data = rng.normal(size=rows.size)
        emb = rng.normal(
            size=(graph.num_vertices, 16)
        ).astype(np.float32)
        exact_plan = EdgeScatter(rows, cols, graph.num_vertices)
        emb64 = np.empty(emb.shape, dtype=np.float64)
        exact = exact_plan.apply(
            data.astype(np.float64), emb, emb64_buf=emb64,
        )
        fast_plan = EdgeScatter(
            rows, cols, graph.num_vertices, dtype=np.float32,
        )
        fast = fast_plan.apply(data.astype(np.float32), emb)
        assert fast.dtype == np.float32
        assert rel_err(fast, exact) <= ERROR_BUDGETS["edge_scatter"]

    @pytest.mark.parametrize("mode", ["both", "either"])
    def test_sparsify_fast_is_byte_identical(self, graph, mode):
        exact = sparsify_by_degree(graph, theta=0.25, mode=mode)
        with numerics("fast"):
            fast = sparsify_by_degree(graph, theta=0.25, mode=mode)
        assert ERROR_BUDGETS["sparsify"] == 0.0
        np.testing.assert_array_equal(fast.indptr, exact.indptr)
        np.testing.assert_array_equal(fast.indices, exact.indices)


# ----------------------------------------------------------------------
# End-to-end invariants
# ----------------------------------------------------------------------
def _fleet(graph, task):
    plan = build_update_plan(graph, theta=0.2)
    return [
        ReplicaSpec(
            graph=graph, task=task, epochs=4, random_state=0,
            update_plan=None if r % 2 == 0 else plan,
            hidden_dim=32, embedding_dim=32,
        )
        for r in range(4)
    ]


class TestEndToEnd:
    @pytest.mark.parametrize("task", ["link", "node"])
    def test_training_losses_and_metrics_track_exact(self, graph, task):
        exact = train_replicas(
            _fleet(graph, task), session=Session(RunSpec()),
        )
        fast = train_replicas(
            _fleet(graph, task), session=Session(RunSpec(numerics="fast")),
        )
        budget_key = "link_bce" if task == "link" else "cross_entropy"
        for e, f in zip(exact, fast):
            le = np.asarray(e.losses)
            lf = np.asarray(f.losses)
            rel = np.max(np.abs(le - lf) / np.maximum(np.abs(le), 1e-9))
            # End-to-end drift compounds across epochs/layers; allow the
            # per-kernel budget a small integration factor.
            assert rel <= 10 * ERROR_BUDGETS[budget_key]
            for a, b in zip(e.test_metrics, f.test_metrics):
                assert abs(a - b) <= 0.02

    def test_experiment_conclusions_preserved(self):
        from repro.experiments.registry import run_all

        [exact] = run_all(quick=True, only=["abl-motivation"])
        [fast] = run_all(
            quick=True, only=["abl-motivation"], numerics="fast",
        )
        assert result_numerics(exact) == "exact"
        assert result_numerics(fast) == "fast"
        assert len(exact.rows) == len(fast.rows)
        for row_e, row_f in zip(exact.rows, fast.rows):
            assert set(row_e) == set(row_f)
            for key, val in row_e.items():
                if isinstance(val, str):
                    assert row_f[key] == val
        # Orderings (which configuration wins) must agree column by
        # column: ranking by any numeric column is tier-invariant.
        for key, val in exact.rows[0].items():
            if not isinstance(val, (int, float)):
                continue
            order_e = np.argsort(
                [row[key] for row in exact.rows], kind="stable",
            )
            order_f = np.argsort(
                [row[key] for row in fast.rows], kind="stable",
            )
            np.testing.assert_array_equal(order_e, order_f)


# ----------------------------------------------------------------------
# Provenance + mixing refusal
# ----------------------------------------------------------------------
class TestProvenance:
    def test_session_stamps_numerics(self):
        from repro.experiments.registry import run_all

        [result] = run_all(quick=True, only=["fig05"], numerics="fast")
        assert result.metadata["provenance"]["numerics"] == "fast"
        assert result_numerics(result) == "fast"

    def test_spec_hash_backcompat(self):
        # Exact specs hash as they always did; fast specs hash apart.
        exact = RunSpec()
        assert exact.spec_hash() == RunSpec(numerics="exact").spec_hash()
        assert RunSpec(numerics="fast").spec_hash() != exact.spec_hash()

    def test_mixed_tiers_refused(self):
        from repro.experiments.harness import ExperimentResult

        def stamped(tier):
            return ExperimentResult(
                experiment_id="x", title="x", rows=[{"a": 1}],
                metadata={"provenance": {"numerics": tier}},
            )

        ensure_uniform_numerics([stamped("exact"), stamped("exact")])
        with pytest.raises(ExperimentError):
            ensure_uniform_numerics([stamped("exact"), stamped("fast")])
        with pytest.raises(ExperimentError):
            ensure_uniform_numerics([stamped("fast")], require="exact")
        assert ensure_uniform_numerics(
            [stamped("fast")], require="fast",
        ) == "fast"
