"""repro.perf.kernels: numerics modes, strategy registry, autotuner."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.perf import kernels
from repro.perf.cache import ArtifactCache, cache_key
from repro.perf.kernels import (
    ERROR_BUDGETS,
    KernelTuner,
    numerics,
    register_strategy,
    set_numerics_mode,
    shape_class,
    strategies,
)


@pytest.fixture(autouse=True)
def _pristine_mode_and_tuner():
    """Every test starts in exact mode with a cache-less tuner."""
    previous_mode = set_numerics_mode("exact")
    previous_tuner = kernels.set_tuner(KernelTuner(ArtifactCache(disk_dir="")))
    yield
    set_numerics_mode(previous_mode)
    kernels.set_tuner(previous_tuner)


class TestNumericsMode:
    def test_default_is_exact(self):
        assert kernels.numerics_mode() == "exact"
        assert not kernels.fast_mode()

    def test_context_manager_scopes_and_restores(self):
        with numerics("fast"):
            assert kernels.fast_mode()
            with numerics("exact"):
                assert not kernels.fast_mode()
            assert kernels.fast_mode()
        assert not kernels.fast_mode()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with numerics("fast"):
                raise RuntimeError("boom")
        assert kernels.numerics_mode() == "exact"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            set_numerics_mode("approximate")
        with pytest.raises(ConfigError):
            with numerics("fastest"):
                pass  # pragma: no cover

    def test_set_returns_previous(self):
        assert set_numerics_mode("fast") == "exact"
        assert set_numerics_mode("exact") == "fast"


class TestRegistry:
    def test_register_and_list(self):
        @register_strategy("test_kernel_registry", "one")
        def impl_one():
            return 1

        @register_strategy("test_kernel_registry", "two")
        def impl_two():
            return 2

        names = strategies("test_kernel_registry")
        assert set(names) == {"one", "two"}
        assert names["one"]() == 1

    def test_builtin_kernels_registered(self):
        assert set(strategies("spmm_normalized")) == {
            "split-scale", "fused-csr", "fused-dense",
        }
        assert set(strategies("segment_fold")) == {"leftfold", "reduceat"}

    def test_strategies_returns_copy(self):
        first = strategies("segment_fold")
        first["bogus"] = lambda: None
        assert "bogus" not in strategies("segment_fold")

    def test_error_budgets_cover_registered_kernels(self):
        for kernel in ("spmm_normalized", "segment_fold"):
            assert kernel in ERROR_BUDGETS


class TestShapeClass:
    def test_log2_bucketing(self):
        assert shape_class(1024, 256) == (10, 8)
        # Within a factor of two -> same bucket.
        assert shape_class(1024) == shape_class(1536)
        assert shape_class(1024) != shape_class(2048)

    def test_degenerate_dims(self):
        assert shape_class(0) == (-1,)
        assert shape_class(1) == (0,)


class _CountingCandidates:
    """Two candidates with call counters, 'b' artificially slower."""

    def __init__(self):
        self.calls = {"a": 0, "b": 0}

    def mapping(self):
        def slow_b():
            self.calls["b"] += 1
            total = 0.0
            for i in range(20000):
                total += i * 1e-9
            return 42 + total * 0

        def fast_a():
            self.calls["a"] += 1
            return 42

        return {"a": fast_a, "b": slow_b}


class TestKernelTuner:
    def test_cold_tune_runs_candidates_then_memoizes(self):
        tuner = KernelTuner(ArtifactCache(disk_dir=""))
        cands = _CountingCandidates()
        out = tuner.run("k", (3,), cands.mapping())
        assert out == 42
        # Both candidates ran (twice each: warmup + timed).
        assert cands.calls["a"] == 2 and cands.calls["b"] == 2
        # Steady state: only the winner runs.
        tuner.run("k", (3,), cands.mapping())
        assert ("k", (3,)) in tuner.decisions()
        winner = tuner.decisions()[("k", (3,))]
        assert cands.calls[winner] == 3

    def test_distinct_shapes_tune_independently(self):
        tuner = KernelTuner(ArtifactCache(disk_dir=""))
        cands = _CountingCandidates()
        tuner.run("k", (3,), cands.mapping())
        tuner.run("k", (4,), cands.mapping())
        assert set(tuner.decisions()) == {("k", (3,)), ("k", (4,))}

    def test_winner_persists_to_fresh_session_via_disk_tier(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = KernelTuner(ArtifactCache(disk_dir=cache_dir))
        cands = _CountingCandidates()
        first.run("k", (5,), cands.mapping())
        winner = first.decisions()[("k", (5,))]

        # A fresh tuner over a fresh cache object sharing the directory
        # (a new process/Session) replays the decision without timing.
        second = KernelTuner(ArtifactCache(disk_dir=cache_dir))
        replay = _CountingCandidates()
        out = second.run("k", (5,), replay.mapping())
        assert out == 42
        assert second.decisions()[("k", (5,))] == winner
        loser = "a" if winner == "b" else "b"
        assert replay.calls[loser] == 0  # no re-timing

    def test_eviction_then_valid_cold_retune(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        cache = ArtifactCache(disk_dir=cache_dir)
        tuner = KernelTuner(cache)
        cands = _CountingCandidates()
        tuner.run("k", (6,), cands.mapping())
        # Force a full LRU purge of the disk tier.
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0")
        cache._evict_over_cap()
        leftover = list((tmp_path / "cache").rglob("*.pkl"))
        assert leftover == []
        monkeypatch.delenv("REPRO_CACHE_MAX_MB")

        # A fresh tuner re-tunes cold and lands on a valid decision.
        fresh = KernelTuner(ArtifactCache(disk_dir=cache_dir))
        retune = _CountingCandidates()
        out = fresh.run("k", (6,), retune.mapping())
        assert out == 42
        assert retune.calls["a"] >= 2 and retune.calls["b"] >= 2
        assert fresh.decisions()[("k", (6,))] in ("a", "b")

    def test_stale_record_retunes_locally(self):
        cache = ArtifactCache(disk_dir="")
        key = cache_key("kernel-tuner", "k", (7,), ("new-a", "new-b"))
        # Poison the cache with a winner that no longer exists.
        cache.get_or_compute(
            KernelTuner.NAMESPACE, key,
            lambda: {"winner": "renamed-away", "timings": {}},
        )
        tuner = KernelTuner(cache)
        out = tuner.run("k", (7,), {"new-a": lambda: "A", "new-b": lambda: "A"})
        assert out == "A"
        assert tuner.decisions()[("k", (7,))] in ("new-a", "new-b")

    def test_tuning_never_touches_global_rng(self, tmp_path):
        state_before = np.random.get_state()[1].copy()
        tuner = KernelTuner(ArtifactCache(disk_dir=str(tmp_path / "c")))
        tuner.run("k", (8,), _CountingCandidates().mapping())
        state_after = np.random.get_state()[1]
        assert np.array_equal(state_before, state_after)

    def test_module_run_tuned_uses_process_tuner(self):
        sentinel = KernelTuner(ArtifactCache(disk_dir=""))
        kernels.set_tuner(sentinel)
        kernels.run_tuned("k", (9,), {"only": lambda: "x"})
        assert sentinel.decisions() == {("k", (9,)): "only"}


class TestTunedKernelDispatch:
    def test_exact_mode_never_consults_tuner(self):
        from repro.graphs.generators import dc_sbm_graph

        graph = dc_sbm_graph(64, 2, 4.0, random_state=0)
        tuner = kernels.tuner()
        graph.normalized_adjacency_matmul(
            np.ones((64, 4), dtype=np.float32)
        )
        assert tuner.decisions() == {}

    def test_fast_mode_tunes_spmm_and_segment_fold(self):
        from repro.graphs.generators import dc_sbm_graph
        from repro.hardware.engine import segment_fold

        graph = dc_sbm_graph(64, 2, 4.0, random_state=0)
        x = np.ones((64, 4), dtype=np.float32)
        rows = np.ones((graph.num_arcs, 4), dtype=np.float32)
        init = np.zeros((64, 4), dtype=np.float32)
        with numerics("fast"):
            graph.normalized_adjacency_matmul(x)
            segment_fold(graph.indptr, rows, init)
        kinds = {kernel for kernel, _ in kernels.tuner().decisions()}
        assert kinds == {"spmm_normalized", "segment_fold"}
