"""Phase-attributed profiler: exclusive attribution, nesting, reporting."""

import threading
import time

import numpy as np

from repro.perf import profile


def test_context_manager_records_time_and_calls():
    profile.reset()
    with profile.phase(profile.PHASE_TIMING):
        time.sleep(0.02)
    totals = profile.phase_totals()
    assert totals[profile.PHASE_TIMING]["calls"] == 1
    assert totals[profile.PHASE_TIMING]["seconds"] >= 0.015


def test_nested_phases_attribute_exclusively():
    profile.reset()
    with profile.phase(profile.PHASE_DATASET):
        time.sleep(0.02)
        with profile.phase(profile.PHASE_TIMING):
            time.sleep(0.03)
        time.sleep(0.02)
    totals = profile.phase_totals()
    outer = totals[profile.PHASE_DATASET]["seconds"]
    inner = totals[profile.PHASE_TIMING]["seconds"]
    # Inner time is charged only to the inner phase; the outer phase
    # keeps only its own ~40 ms.
    assert inner >= 0.025
    assert 0.03 <= outer < 0.055
    assert totals[profile.PHASE_DATASET]["calls"] == 1
    assert totals[profile.PHASE_TIMING]["calls"] == 1


def test_reentrant_same_phase_keeps_one_bucket():
    profile.reset()
    with profile.phase(profile.PHASE_ALLOCATION):
        with profile.phase(profile.PHASE_ALLOCATION):
            time.sleep(0.01)
    totals = profile.phase_totals()
    assert totals[profile.PHASE_ALLOCATION]["calls"] == 2
    assert totals[profile.PHASE_ALLOCATION]["seconds"] >= 0.008


def test_decorator_form():
    profile.reset()

    @profile.phase(profile.PHASE_FUNCTIONAL)
    def work():
        time.sleep(0.01)
        return 42

    assert work() == 42
    assert work.__name__ == "work"
    totals = profile.phase_totals()
    assert totals[profile.PHASE_FUNCTIONAL]["calls"] == 1


def test_exception_still_closes_phase():
    profile.reset()
    try:
        with profile.phase(profile.PHASE_MAPPING):
            raise ValueError("boom")
    except ValueError:
        pass
    totals = profile.phase_totals()
    assert totals[profile.PHASE_MAPPING]["calls"] == 1
    # The frame stack is clean: a fresh phase nests at top level again.
    with profile.phase(profile.PHASE_TIMING):
        pass
    assert profile.phase_totals()[profile.PHASE_TIMING]["calls"] == 1


def test_snapshot_since_returns_delta_only():
    profile.reset()
    with profile.phase(profile.PHASE_TRAINING):
        time.sleep(0.01)
    before = profile.snapshot()
    with profile.phase(profile.PHASE_PREDICTOR):
        time.sleep(0.01)
    spent = profile.since(before)
    assert profile.PHASE_PREDICTOR in spent
    assert profile.PHASE_TRAINING not in spent  # no new time accrued
    assert spent[profile.PHASE_PREDICTOR]["calls"] == 1


def test_threads_attribute_independently():
    profile.reset()

    def worker():
        with profile.phase(profile.PHASE_TIMING):
            time.sleep(0.02)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    totals = profile.phase_totals()
    assert totals[profile.PHASE_TIMING]["calls"] == 4
    assert totals[profile.PHASE_TIMING]["seconds"] >= 4 * 0.015


def test_merge_accumulates():
    into = {"a": {"seconds": 1.0, "calls": 2}}
    profile.merge(into, {"a": {"seconds": 0.5, "calls": 1},
                         "b": {"seconds": 2.0, "calls": 3}})
    assert into["a"] == {"seconds": 1.5, "calls": 3}
    assert into["b"] == {"seconds": 2.0, "calls": 3}


def test_phase_report_shares_and_coverage(tmp_path):
    per_experiment = {
        "exp1": {"wall_s": 6.0, "phases": {
            "gcn_training": {"seconds": 4.0, "calls": 2},
        }},
        "exp2": {"wall_s": 4.0, "phases": {
            "gcn_training": {"seconds": 1.0, "calls": 1},
            "predictor_fit": {"seconds": 4.0, "calls": 1},
        }},
    }
    path = tmp_path / "phases.json"
    report = profile.write_phase_report(
        str(path), 10.0, per_experiment=per_experiment, quick=True,
    )
    assert report["wall_s"] == 10.0
    assert report["attributed_s"] == 9.0
    assert report["coverage"] == 0.9
    assert report["quick"] is True
    # Sorted by descending seconds: training (5.0) before predictor (4.0).
    assert list(report["phases"]) == ["gcn_training", "predictor_fit"]
    assert report["phases"]["gcn_training"]["share_of_wall"] == 0.5
    assert path.exists()

    import json

    on_disk = json.loads(path.read_text())
    assert on_disk["coverage"] == 0.9
    assert on_disk["per_experiment"]["exp1"]["wall_s"] == 6.0


def test_overhead_stays_small():
    profile.reset()
    timer = profile.phase(profile.PHASE_TIMING)
    start = time.perf_counter()
    for _ in range(2000):
        with timer:
            pass
    elapsed = time.perf_counter() - start
    # ~couple of microseconds per enter/exit pair; generous CI bound.
    assert elapsed < 0.5


def test_instrumented_hot_paths_accrue_phases():
    profile.reset()
    from repro.allocation.greedy import greedy_allocation
    from repro.allocation.problem import AllocationProblem

    problem = AllocationProblem(
        stage_names=["A", "B"],
        times_ns=np.array([100.0, 200.0]),
        crossbars_per_replica=np.array([1, 1]),
        budget=4,
        replica_caps=np.array([4, 4]),
        num_microbatches=4,
    )
    greedy_allocation(problem)
    totals = profile.phase_totals()
    assert totals[profile.PHASE_ALLOCATION]["calls"] == 1
