"""Pipeline simulator: Eq. 3-6 semantics, schedules, idle accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PipelineError
from repro.pipeline.simulator import (
    ScheduleMode,
    analytic_makespan_ns,
    simulate_pipeline,
)


def test_serial_makespan_is_sum():
    times = np.array([[1.0, 2.0], [3.0, 4.0]])
    result = simulate_pipeline(times, ScheduleMode.SERIAL)
    assert result.total_time_ns == pytest.approx(10.0)
    # Nothing overlaps: busy time equals makespan.
    assert result.stage_busy_ns.sum() == pytest.approx(10.0)


def test_pipelined_uniform_matches_eq6():
    stage_times = [2.0, 5.0, 1.0]
    num_mbs = 7
    times = np.tile(np.array(stage_times)[:, None], (1, num_mbs))
    result = simulate_pipeline(times, ScheduleMode.INTRA_INTER)
    assert result.total_time_ns == pytest.approx(
        analytic_makespan_ns(stage_times, num_mbs),
    )


@given(
    stage_times=st.lists(st.floats(0.1, 50.0), min_size=1, max_size=6),
    num_mbs=st.integers(1, 12),
)
@settings(max_examples=60, deadline=None)
def test_eq6_property(stage_times, num_mbs):
    times = np.tile(np.array(stage_times)[:, None], (1, num_mbs))
    result = simulate_pipeline(times, ScheduleMode.INTRA_INTER)
    assert result.total_time_ns == pytest.approx(
        sum(stage_times) + (num_mbs - 1) * max(stage_times), rel=1e-9,
    )


@given(
    times=st.lists(
        st.lists(st.floats(0.0, 20.0), min_size=2, max_size=8),
        min_size=1, max_size=5,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1),
)
@settings(max_examples=50, deadline=None)
def test_schedule_constraints_hold(times):
    matrix = np.array(times)
    result = simulate_pipeline(matrix, ScheduleMode.INTRA_INTER)
    starts, ends = result.starts, result.ends
    stages, mbs = matrix.shape
    for i in range(stages):
        for j in range(mbs):
            assert ends[i, j] == pytest.approx(starts[i, j] + matrix[i, j])
            if i > 0:  # Eq. (4)
                assert starts[i, j] >= ends[i - 1, j] - 1e-9
            if j > 0:  # Eq. (3)
                assert starts[i, j] >= ends[i, j - 1] - 1e-9


def test_ordering_serial_ge_intra_batch_ge_full():
    rng = np.random.default_rng(0)
    times = rng.uniform(0.5, 5.0, size=(4, 12))
    serial = simulate_pipeline(times, ScheduleMode.SERIAL).total_time_ns
    intra = simulate_pipeline(
        times, ScheduleMode.INTRA_BATCH, microbatches_per_batch=3,
    ).total_time_ns
    full = simulate_pipeline(times, ScheduleMode.INTRA_INTER).total_time_ns
    assert serial >= intra >= full


def test_intra_batch_drains():
    # Two stages of 1 and 6 units, batches of 2: the Fig. 5 case (a)
    # yields exactly 13 units per batch.
    times = np.tile([[1.0], [6.0]], (1, 8))
    result = simulate_pipeline(
        times, ScheduleMode.INTRA_BATCH, microbatches_per_batch=2,
    )
    assert result.total_time_ns == pytest.approx(52.0)


def test_idle_fractions():
    times = np.array([[1.0, 1.0], [4.0, 4.0]])
    result = simulate_pipeline(times, ScheduleMode.INTRA_INTER)
    # Stage 1 is busy 2 of 9 units.
    assert result.total_time_ns == pytest.approx(9.0)
    assert result.idle_fraction(0) == pytest.approx(1 - 2 / 9)
    assert result.idle_fraction(1) == pytest.approx(1 - 8 / 9)
    assert result.idle_fractions().shape == (2,)


def test_single_microbatch_no_pipeline_benefit():
    times = np.array([[3.0], [4.0]])
    for mode in (ScheduleMode.SERIAL, ScheduleMode.INTRA_INTER):
        assert simulate_pipeline(times, mode).total_time_ns == pytest.approx(7.0)


def test_validation():
    with pytest.raises(PipelineError):
        simulate_pipeline(np.zeros((0, 2)))
    with pytest.raises(PipelineError):
        simulate_pipeline(np.array([1.0, 2.0]))  # 1-D
    with pytest.raises(PipelineError):
        simulate_pipeline(np.array([[-1.0]]))
    with pytest.raises(PipelineError):
        simulate_pipeline(
            np.ones((2, 2)), ScheduleMode.INTRA_BATCH,
            microbatches_per_batch=0,
        )
    with pytest.raises(PipelineError):
        analytic_makespan_ns([], 3)
    with pytest.raises(PipelineError):
        analytic_makespan_ns([1.0], 0)


def test_heterogeneous_times_bottleneck():
    # One slow micro-batch in the middle delays everything after it.
    times = np.ones((2, 5))
    times[1, 2] = 10.0
    result = simulate_pipeline(times, ScheduleMode.INTRA_INTER)
    assert result.total_time_ns == pytest.approx(1 + 2 * 1 + 10.0 + 2 * 1)
