"""Vectorized pipeline recurrence vs the retained double-loop reference.

``simulate_pipeline`` solves the Eq. 3-6 recurrence with per-row
cummax/cumsum scans; ``simulate_pipeline_reference`` keeps the original
micro-batch loop.  They must agree on every shape, schedule mode, batch
granularity, and on degenerate inputs (zero times, single stage, single
micro-batch).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.simulator import (
    ScheduleMode,
    simulate_pipeline,
    simulate_pipeline_reference,
)


def _assert_equivalent(times, mode, batch):
    fast = simulate_pipeline(times, mode=mode, microbatches_per_batch=batch)
    slow = simulate_pipeline_reference(
        times, mode=mode, microbatches_per_batch=batch,
    )
    np.testing.assert_allclose(
        fast.starts, slow.starts, rtol=1e-12, atol=1e-9,
    )
    np.testing.assert_allclose(fast.ends, slow.ends, rtol=1e-12, atol=1e-9)
    assert fast.mode is slow.mode


@settings(max_examples=120, deadline=None)
@given(
    num_stages=st.integers(min_value=1, max_value=9),
    num_mbs=st.integers(min_value=1, max_value=33),
    mode=st.sampled_from(list(ScheduleMode)),
    batch=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    zero_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_vectorized_matches_reference(
    num_stages, num_mbs, mode, batch, seed, zero_fraction,
):
    rng = np.random.default_rng(seed)
    times = rng.uniform(0.0, 100.0, size=(num_stages, num_mbs))
    # Zero-time entries model empty micro-batches (e.g. a last partial
    # micro-batch with no edges in an edge-proportional stage).
    times[rng.random(times.shape) < zero_fraction] = 0.0
    _assert_equivalent(times, mode, batch)


def test_all_zero_times():
    times = np.zeros((4, 6))
    for mode in ScheduleMode:
        _assert_equivalent(times, mode, 2)
        assert simulate_pipeline(times, mode=mode).total_time_ns == 0.0


def test_single_stage_single_microbatch():
    times = np.array([[3.5]])
    for mode in ScheduleMode:
        _assert_equivalent(times, mode, 1)


def test_batch_larger_than_microbatch_count():
    times = np.random.default_rng(3).uniform(1, 10, size=(3, 5))
    for mode in ScheduleMode:
        _assert_equivalent(times, mode, 100)
