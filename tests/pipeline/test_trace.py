"""Pipeline trace rendering and utilisation reports."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.pipeline.simulator import ScheduleMode, simulate_pipeline
from repro.pipeline.trace import (
    bottleneck_stage,
    render_gantt,
    utilization_report,
)


@pytest.fixture
def result():
    times = np.array([[1.0, 1.0, 1.0], [4.0, 4.0, 4.0]])
    return simulate_pipeline(times, ScheduleMode.INTRA_INTER)


def test_render_gantt_structure(result):
    chart = render_gantt(result, stage_names=["CO1", "AG1"], width=26)
    lines = chart.splitlines()
    assert lines[0].startswith("CO1")
    assert lines[1].startswith("AG1")
    # Stage 2 is the bottleneck: its row is mostly busy glyphs.
    ag_row = lines[1].split("|")[1]
    assert ag_row.count(".") < len(ag_row) / 3
    # Micro-batch glyphs 0, 1, 2 all appear.
    assert {"0", "1", "2"} <= set(lines[0] + lines[1])


def test_render_gantt_validation(result):
    with pytest.raises(PipelineError):
        render_gantt(result, stage_names=["only-one"])
    with pytest.raises(PipelineError):
        render_gantt(result, width=2)


def test_utilization_report(result):
    rows = utilization_report(result, ["CO1", "AG1"])
    assert [r["stage"] for r in rows] == ["CO1", "AG1"]
    total = result.total_time_ns
    assert rows[0]["busy_ns"] == pytest.approx(3.0)
    assert rows[0]["busy_fraction"] == pytest.approx(3.0 / total)
    for row in rows:
        assert row["busy_fraction"] + row["idle_fraction"] == pytest.approx(1.0)


def test_bottleneck_stage(result):
    assert bottleneck_stage(result, ["CO1", "AG1"]) == "AG1"
    assert bottleneck_stage(result) == "S1"


def test_name_length_checked(result):
    with pytest.raises(PipelineError):
        utilization_report(result, ["a", "b", "c"])
    with pytest.raises(PipelineError):
        bottleneck_stage(result, ["a"])
