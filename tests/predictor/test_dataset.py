"""Predictor training-data generation."""

import numpy as np
import pytest

from repro.errors import PredictorError
from repro.predictor.dataset import (
    PredictorDataset,
    generate_dataset,
    random_workload,
)
from repro.predictor.features import NUM_FEATURES


def test_generate_dataset_shape():
    ds = generate_dataset(num_samples=100, random_state=0)
    assert ds.num_samples == 100
    assert ds.features.shape == (100, NUM_FEATURES + 1)
    assert ds.targets.shape == (100,)
    assert len(ds.stage_names) == 100


def test_generation_deterministic():
    a = generate_dataset(num_samples=60, random_state=4)
    b = generate_dataset(num_samples=60, random_state=4)
    np.testing.assert_allclose(a.features, b.features)
    np.testing.assert_allclose(a.targets, b.targets)


def test_targets_span_orders_of_magnitude():
    ds = generate_dataset(num_samples=200, random_state=1)
    assert ds.targets.max() - ds.targets.min() > 1.0  # > 10x in time


def test_split_fractions():
    ds = generate_dataset(num_samples=100, random_state=0)
    train, test = ds.split(train_fraction=0.8, random_state=0)
    assert train.num_samples == 80
    assert test.num_samples == 20
    # Disjoint: together they reproduce the multiset of targets.
    combined = np.sort(np.concatenate([train.targets, test.targets]))
    np.testing.assert_allclose(combined, np.sort(ds.targets))


def test_split_validation():
    ds = generate_dataset(num_samples=40, random_state=0)
    with pytest.raises(PredictorError):
        ds.split(train_fraction=0.0)
    with pytest.raises(PredictorError):
        ds.split(train_fraction=1.0)


def test_random_workload_variety():
    rng = np.random.default_rng(0)
    workloads = [random_workload(rng) for _ in range(8)]
    sizes = {wl.num_vertices for wl in workloads}
    depths = {wl.num_layers for wl in workloads}
    assert len(sizes) > 3
    assert depths <= {2, 3}
    for wl in workloads:
        # Layer dims chain correctly.
        for (_, out_d), (in_d, _) in zip(wl.layer_dims, wl.layer_dims[1:]):
            assert out_d == in_d


def test_generate_validation():
    with pytest.raises(PredictorError):
        generate_dataset(num_samples=0)
    with pytest.raises(PredictorError):
        generate_dataset(num_samples=10, noise_sigma=-1.0)
