"""Table I feature ablation (Section V-A)."""

import pytest

from repro.errors import PredictorError
from repro.predictor.dataset import generate_dataset
from repro.predictor.feature_ablation import (
    ablate_features,
    importance_ranking,
)
from repro.predictor.features import FEATURE_NAMES
from repro.predictor.predictor import PerKindRegressor
from repro.predictor.regressors import LinearRegressor


@pytest.fixture(scope="module")
def ablation():
    dataset = generate_dataset(num_samples=500, random_state=3)
    return ablate_features(
        dataset=dataset,
        model_factory=lambda: PerKindRegressor(LinearRegressor),
        random_state=3,
    )


def test_covers_all_features(ablation):
    assert set(ablation) == set(FEATURE_NAMES) | {"<all features>"}


def test_dimension_features_matter(ablation):
    ranking = importance_ranking(ablation)
    # Removing some dimension feature must hurt noticeably more than the
    # least important feature.
    dims = [ranking[n] for n in FEATURE_NAMES if n not in ("layer",)]
    assert max(dims) > 0.01
    assert max(dims) >= ranking["layer"]


def test_ranking_sorted_descending(ablation):
    deltas = list(importance_ranking(ablation).values())
    assert all(a >= b for a, b in zip(deltas, deltas[1:]))


def test_ranking_requires_baseline():
    with pytest.raises(PredictorError):
        importance_ranking({"r_ifm_co": 0.5})


def test_ablation_requires_kind_tagged():
    import numpy as np

    from repro.predictor.dataset import PredictorDataset

    bad = PredictorDataset(
        features=np.zeros((10, 3)), targets=np.zeros(10),
        stage_names=["CO1"] * 10,
    )
    with pytest.raises(PredictorError):
        ablate_features(dataset=bad)
