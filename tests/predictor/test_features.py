"""Table I feature extraction."""

import numpy as np
import pytest

from repro.errors import PredictorError
from repro.predictor.features import (
    FEATURE_NAMES,
    NUM_FEATURES,
    STAGE_KIND_CODES,
    stage_features,
    stage_features_with_kind,
    stage_samples,
    workload_features,
)
from repro.stages.latency import StageTimingModel
from repro.stages.stage import StageKind, StageSpec


def test_ten_features_as_in_table_i():
    assert NUM_FEATURES == 10
    assert "sparsity" in FEATURE_NAMES and "layer" in FEATURE_NAMES


def test_stage_features_shape_and_layer(small_workload):
    for stage in small_workload.stage_chain():
        vec = stage_features(small_workload, stage)
        assert vec.shape == (NUM_FEATURES,)
        assert vec[9] == stage.layer
        assert vec[8] <= 0.0  # log10 of (1 - sparsity) <= 0


def test_kind_code_appended(small_workload):
    stage = small_workload.stage_chain()[1]  # AG1
    vec = stage_features_with_kind(small_workload, stage)
    assert vec.shape == (NUM_FEATURES + 1,)
    assert vec[-1] == STAGE_KIND_CODES[StageKind.AGGREGATION]


def test_all_kinds_have_codes():
    assert set(STAGE_KIND_CODES) == set(StageKind)
    assert len(set(STAGE_KIND_CODES.values())) == 4


def test_workload_features_keys(small_workload):
    feats = workload_features(small_workload)
    assert set(feats) == {s.name for s in small_workload.stage_chain()}


def test_stage_samples_targets_are_log_times(small_workload):
    timing = StageTimingModel(small_workload)
    features, targets, names = stage_samples(timing)
    assert features.shape == (8, NUM_FEATURES + 1)
    for name, log_t in zip(names, targets):
        stage = next(s for s in timing.stages if s.name == name)
        true = timing.mean_stage_time_ns(stage, 1)
        assert 10 ** log_t == pytest.approx(true, rel=1e-6)


def test_features_scale_with_dims(small_workload):
    chain = small_workload.stage_chain()
    ag1 = chain[1]
    co1 = chain[0]
    ag_vec = stage_features(small_workload, ag1)
    co_vec = stage_features(small_workload, co1)
    # AG's mapped-rows feature (index 6) reflects N >> d_in.
    assert ag_vec[6] > co_vec[2]


def test_invalid_stage_layer(small_workload):
    bogus = StageSpec(
        kind=StageKind.COMBINATION, layer=99, chain_index=0,
        mapped_rows=4, mapped_cols=4, input_dim=4,
    )
    with pytest.raises(PredictorError):
        stage_features(small_workload, bogus)
