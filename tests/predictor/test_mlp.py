"""From-scratch MLP regressor."""

import numpy as np
import pytest

from repro.errors import PredictorError
from repro.predictor.mlp import MLPRegressor
from repro.predictor.regressors import LinearRegressor


def test_fits_nonlinear_function():
    rng = np.random.default_rng(0)
    x = rng.uniform(-2, 2, size=(400, 2))
    y = np.sin(x[:, 0]) * np.cos(x[:, 1])
    mlp = MLPRegressor(hidden_layers=(64,), epochs=200, random_state=0)
    mlp.fit(x, y)
    linear = LinearRegressor().fit(x, y)
    assert mlp.rmse(x, y) < 0.5 * linear.rmse(x, y)


def test_loss_decreases():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(200, 3))
    y = x[:, 0] ** 2
    mlp = MLPRegressor(epochs=50, random_state=0).fit(x, y)
    losses = mlp.loss_history
    assert losses[-1] < losses[0]


def test_deterministic_given_seed():
    rng = np.random.default_rng(2)
    x = rng.normal(size=(100, 2))
    y = x.sum(axis=1)
    a = MLPRegressor(epochs=20, random_state=5).fit(x, y)
    b = MLPRegressor(epochs=20, random_state=5).fit(x, y)
    np.testing.assert_allclose(a.predict(x), b.predict(x))


def test_num_layers_convention():
    assert MLPRegressor(hidden_layers=(256,)).num_layers == 3
    assert MLPRegressor(hidden_layers=(64, 64)).num_layers == 4


def test_target_standardisation_handles_scale():
    rng = np.random.default_rng(3)
    x = rng.normal(size=(150, 2))
    y = 1e6 * x[:, 0] + 5e6
    mlp = MLPRegressor(epochs=150, random_state=0).fit(x, y)
    # Relative error should be small despite the huge scale.
    assert mlp.rmse(x, y) < 0.1 * np.abs(y).mean()


def test_validation():
    with pytest.raises(PredictorError):
        MLPRegressor(hidden_layers=())
    with pytest.raises(PredictorError):
        MLPRegressor(hidden_layers=(0,))
    with pytest.raises(PredictorError):
        MLPRegressor(epochs=0)
    with pytest.raises(PredictorError):
        MLPRegressor(learning_rate=0.0)
    with pytest.raises(PredictorError):
        MLPRegressor(weight_decay=-1.0)
    with pytest.raises(PredictorError):
        MLPRegressor().predict(np.zeros((1, 2)))
