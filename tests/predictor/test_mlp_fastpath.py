"""MLP fast-path fit vs the retained reference loop, plus fit memoisation.

``_fit`` draws every epoch's shuffle as one ``(epochs, n)`` permutation
matrix up front and runs the Adam update in preallocated scratch with the
same IEEE operations in the same order as ``_fit_reference`` (``g * g``
standing in, bitwise-equally, for ``g ** 2``).  Weights, biases and the
loss history must therefore match *bit for bit*, not just approximately.

The base ``Regressor.fit`` additionally memoises fitted state through the
content-keyed artifact cache: a second fit of equal configuration on
equal data restores identical state without recomputation.
"""

import numpy as np
import pytest

from repro.perf import get_cache
from repro.predictor.mlp import MLPRegressor
from repro.predictor.regressors import RidgeRegressor


def _training_data(seed=0, n=300, dims=11):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1.0, (n, dims))
    y = 3.0 * x[:, 0] - x[:, 1] ** 2 + rng.normal(0.0, 0.1, n) + 5.0
    return x, y


@pytest.mark.parametrize("hidden,epochs", [
    ((256,), 30),          # the paper's three-layer shape
    ((64, 64), 25),        # two hidden layers
    ((32, 32, 32), 20),    # depth-5 shape from the Fig. 9b sweep
])
def test_fit_bit_identical_to_reference(hidden, epochs):
    x, y = _training_data()
    xn = (x - x.mean(axis=0)) / x.std(axis=0)
    fast = MLPRegressor(hidden_layers=hidden, epochs=epochs, random_state=7)
    ref = MLPRegressor(hidden_layers=hidden, epochs=epochs, random_state=7)
    fast._fit(xn, y)
    ref._fit_reference(xn, y)
    assert len(fast._weights) == len(ref._weights)
    for w_fast, w_ref in zip(fast._weights, ref._weights):
        np.testing.assert_array_equal(w_fast, w_ref)
    for b_fast, b_ref in zip(fast._biases, ref._biases):
        np.testing.assert_array_equal(b_fast, b_ref)
    assert fast.loss_history == ref.loss_history
    assert (fast._y_mean, fast._y_std) == (ref._y_mean, ref._y_std)


def test_fit_bit_identical_with_partial_final_batch():
    # n not divisible by batch_size exercises the short-batch epilogue.
    x, y = _training_data(seed=1, n=130)
    xn = (x - x.mean(axis=0)) / x.std(axis=0)
    fast = MLPRegressor(epochs=15, batch_size=64, random_state=2)
    ref = MLPRegressor(epochs=15, batch_size=64, random_state=2)
    fast._fit(xn, y)
    ref._fit_reference(xn, y)
    for w_fast, w_ref in zip(fast._weights, ref._weights):
        np.testing.assert_array_equal(w_fast, w_ref)
    assert fast.loss_history == ref.loss_history


def test_public_fit_predict_unchanged():
    x, y = _training_data(seed=3, n=200)
    model = MLPRegressor(epochs=40, random_state=0).fit(x, y)
    pred = model.predict(x)
    assert pred.shape == (200,)
    # The standardised net must track the target scale reasonably.
    assert model.rmse(x, y) < np.std(y)


def test_fit_memoised_across_equal_instances():
    x, y = _training_data(seed=4, n=150)
    before = get_cache().stats.hits
    a = MLPRegressor(epochs=10, random_state=5).fit(x, y)
    after_first = get_cache().stats.hits
    b = MLPRegressor(epochs=10, random_state=5).fit(x, y)
    assert get_cache().stats.hits > after_first  # second fit was a hit
    for w_a, w_b in zip(a._weights, b._weights):
        np.testing.assert_array_equal(w_a, w_b)
    np.testing.assert_array_equal(b.predict(x), a.predict(x))
    assert a.loss_history == b.loss_history
    # Restored state is an independent copy, not an alias.
    assert a._weights[0] is not b._weights[0]


def test_fit_cache_distinguishes_config_and_data():
    x, y = _training_data(seed=6, n=120)
    base = MLPRegressor(epochs=8, random_state=0).fit(x, y)
    other_seed = MLPRegressor(epochs=8, random_state=1).fit(x, y)
    assert any(
        not np.array_equal(w_a, w_b)
        for w_a, w_b in zip(base._weights, other_seed._weights)
    )
    other_data = MLPRegressor(epochs=8, random_state=0).fit(x, y + 1.0)
    assert other_data._y_mean != base._y_mean


def test_cache_hit_does_not_touch_global_rng():
    x, y = _training_data(seed=8, n=100)
    RidgeRegressor().fit(x, y)  # prime the cache
    np.random.seed(123)
    expected = np.random.default_rng(0).random()  # unrelated stream
    np.random.seed(123)
    RidgeRegressor().fit(x, y)  # hit
    draw_after_hit = float(np.random.random())
    np.random.seed(123)
    assert draw_after_hit == float(np.random.random())
    assert expected == np.random.default_rng(0).random()
