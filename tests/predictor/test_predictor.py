"""TimePredictor facade + PerKindRegressor dispatch."""

import numpy as np
import pytest

from repro.errors import PredictorError
from repro.predictor.dataset import generate_dataset
from repro.predictor.predictor import PerKindRegressor, TimePredictor
from repro.predictor.regressors import LinearRegressor
from repro.stages.latency import StageTimingModel
from repro.stages.workload import workload_from_dataset


@pytest.fixture(scope="module")
def fitted_predictor():
    ds = generate_dataset(num_samples=400, random_state=1)
    return TimePredictor(PerKindRegressor(LinearRegressor)).fit(ds)


def test_per_kind_dispatch():
    # Two kinds with opposite linear laws; one head each must learn both.
    rng = np.random.default_rng(0)
    x = rng.normal(size=(200, 2))
    kinds = np.repeat([0.0, 1.0], 100)
    y = np.where(kinds == 0, 3 * x[:, 0], -3 * x[:, 0])
    features = np.column_stack([x, kinds])
    model = PerKindRegressor(LinearRegressor).fit(features, y)
    assert model.rmse(features, y) < 0.1


def test_per_kind_unknown_code_raises():
    x = np.column_stack([np.random.default_rng(0).normal(size=(20, 1)),
                         np.zeros(20)])
    model = PerKindRegressor(LinearRegressor).fit(x, x[:, 0])
    bad = np.array([[0.0, 7.0]])
    with pytest.raises(PredictorError):
        model.predict(bad)


def test_per_kind_validation():
    model = PerKindRegressor(LinearRegressor)
    with pytest.raises(PredictorError):
        model.predict(np.zeros((1, 3)))
    with pytest.raises(PredictorError):
        model.fit(np.zeros((5, 1)), np.zeros(5))  # needs >= 2 columns
    with pytest.raises(PredictorError):
        model.fit(np.zeros((5, 3)), np.zeros(4))


def test_predict_before_fit():
    with pytest.raises(PredictorError):
        TimePredictor().predict_stage_times(
            workload_from_dataset("cora", random_state=0),
        )


def test_predictions_positive_and_reasonable(fitted_predictor):
    workload = workload_from_dataset("cora", random_state=0)
    times = fitted_predictor.predict_stage_times(workload)
    truth = StageTimingModel(workload).no_replica_times()
    assert set(times) == set(truth)
    for name in truth:
        assert times[name] > 0
        # Within 10x of the truth even with a linear head.
        assert 0.1 < times[name] / truth[name] < 10.0


def test_predict_array_order(fitted_predictor):
    workload = workload_from_dataset("cora", random_state=0)
    array = fitted_predictor.predict_stage_time_array(workload)
    by_name = fitted_predictor.predict_stage_times(workload)
    expected = [by_name[s.name] for s in workload.stage_chain()]
    np.testing.assert_allclose(array, expected)


def test_is_fitted_flag():
    predictor = TimePredictor(PerKindRegressor(LinearRegressor))
    assert not predictor.is_fitted
    ds = generate_dataset(num_samples=60, random_state=0)
    predictor.fit(ds)
    assert predictor.is_fitted
