"""Profiling baseline and the evaluation harness."""

import pytest

from repro.errors import PredictorError
from repro.predictor.dataset import generate_dataset
from repro.predictor.evaluate import (
    compare_models,
    leave_one_dataset_out,
    prediction_accuracy,
    sweep_mlp_depth,
    sweep_mlp_width,
)
from repro.predictor.profiler import profile_stage_times
from repro.stages.latency import StageTimingModel


def test_profile_returns_exact_times(small_workload):
    timing = StageTimingModel(small_workload)
    result = profile_stage_times(timing)
    truth = timing.no_replica_times()
    for name, value in result.stage_times_ns.items():
        assert value == pytest.approx(truth[name])
    # Overhead equals the profiled serial epoch time.
    expected = sum(truth.values()) * small_workload.num_microbatches
    assert result.overhead_ns == pytest.approx(expected)


def test_profile_epochs_scale_overhead(small_workload):
    timing = StageTimingModel(small_workload)
    one = profile_stage_times(timing, epochs=1)
    three = profile_stage_times(timing, epochs=3)
    assert three.overhead_ns == pytest.approx(3 * one.overhead_ns)
    with pytest.raises(PredictorError):
        profile_stage_times(timing, epochs=0)


def test_prediction_accuracy_metric():
    assert prediction_accuracy(100.0, 100.0) == 1.0
    assert prediction_accuracy(100.0, 90.0) == pytest.approx(0.9)
    assert prediction_accuracy(100.0, 300.0) == 0.0  # floored
    with pytest.raises(PredictorError):
        prediction_accuracy(0.0, 1.0)


@pytest.fixture(scope="module")
def shared_dataset():
    return generate_dataset(num_samples=600, random_state=2)


def test_compare_models_returns_all(shared_dataset):
    results = compare_models(dataset=shared_dataset)
    assert {"MLP", "XGB", "SVR", "DT", "LR", "BR"} <= set(results)
    assert all(r >= 0 for r in results.values())


def test_mlp_among_best_models(shared_dataset):
    results = compare_models(dataset=shared_dataset)
    ranked = sorted(results, key=results.get)
    assert "MLP" in ranked[:3]  # paper: MLP wins


def test_depth_sweep(shared_dataset):
    results = sweep_mlp_depth(depths=(2, 3), dataset=shared_dataset)
    assert set(results) == {2, 3}
    # A hidden layer beats the purely linear depth-2 model.
    assert results[3] <= results[2]
    with pytest.raises(PredictorError):
        sweep_mlp_depth(depths=(1,), dataset=shared_dataset)


def test_width_sweep(shared_dataset):
    results = sweep_mlp_width(widths=(16, 64), dataset=shared_dataset)
    assert set(results) == {16, 64}


def test_leave_one_dataset_out_accuracy():
    result = leave_one_dataset_out("cora", train_samples=400, random_state=0)
    assert result.dataset == "cora"
    assert 0.5 < result.accuracy <= 1.0  # paper: 93.4% average
    assert len(result.per_stage_accuracy) == 12  # 3-layer model, 4L stages
