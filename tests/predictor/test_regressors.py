"""From-scratch regressors: each family learns simple functions."""

import numpy as np
import pytest

from repro.errors import PredictorError
from repro.predictor.regressors import (
    BayesianRidgeRegressor,
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    KernelRidgeRegressor,
    KNNRegressor,
    LinearRegressor,
    RidgeRegressor,
    root_mean_squared_error,
)

ALL_MODELS = [
    LinearRegressor,
    RidgeRegressor,
    BayesianRidgeRegressor,
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    KernelRidgeRegressor,
    KNNRegressor,
]


def linear_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    y = 2.0 * x[:, 0] - 1.5 * x[:, 1] + 0.5 + rng.normal(0, 0.01, n)
    return x, y


def test_rmse_function():
    assert root_mean_squared_error([1, 2], [1, 2]) == 0.0
    assert root_mean_squared_error([0, 0], [3, 4]) == pytest.approx(
        np.sqrt(12.5),
    )
    with pytest.raises(PredictorError):
        root_mean_squared_error([1], [1, 2])
    with pytest.raises(PredictorError):
        root_mean_squared_error([], [])


@pytest.mark.parametrize("cls", [LinearRegressor, RidgeRegressor,
                                 BayesianRidgeRegressor])
def test_linear_family_recovers_linear_fn(cls):
    x, y = linear_data()
    model = cls().fit(x, y)
    assert model.rmse(x, y) < 0.1


@pytest.mark.parametrize("cls", ALL_MODELS)
def test_all_models_fit_and_predict(cls):
    x, y = linear_data(n=120)
    model = cls().fit(x, y)
    pred = model.predict(x)
    assert pred.shape == (120,)
    # Everything should beat the constant predictor on linear data.
    constant_rmse = root_mean_squared_error(y, np.full_like(y, y.mean()))
    assert model.rmse(x, y) < constant_rmse


@pytest.mark.parametrize("cls", ALL_MODELS)
def test_predict_before_fit_raises(cls):
    with pytest.raises(PredictorError):
        cls().predict(np.zeros((1, 3)))


def test_tree_fits_step_function():
    rng = np.random.default_rng(1)
    x = rng.uniform(-1, 1, size=(300, 1))
    y = np.where(x[:, 0] > 0.2, 5.0, -5.0)
    tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
    assert tree.rmse(x, y) < 1.0


def test_boosting_fits_nonlinear():
    rng = np.random.default_rng(2)
    x = rng.uniform(-2, 2, size=(300, 2))
    y = np.sin(x[:, 0]) + x[:, 1] ** 2
    gbt = GradientBoostingRegressor(n_estimators=60).fit(x, y)
    linear = LinearRegressor().fit(x, y)
    assert gbt.rmse(x, y) < 0.5 * linear.rmse(x, y)


def test_kernel_ridge_fits_nonlinear():
    rng = np.random.default_rng(3)
    x = rng.uniform(-2, 2, size=(200, 1))
    y = np.sin(2 * x[:, 0])
    model = KernelRidgeRegressor(alpha=0.01, gamma=1.0).fit(x, y)
    assert model.rmse(x, y) < 0.2


def test_knn_exact_on_training_points_k1():
    x, y = linear_data(n=50)
    model = KNNRegressor(k=1).fit(x, y)
    np.testing.assert_allclose(model.predict(x), y, rtol=1e-6)


def test_1d_input_promoted():
    x, y = linear_data(n=50)
    model = LinearRegressor().fit(x, y)
    single = model.predict(x[0])
    assert single.shape == (1,)


def test_hyperparameter_validation():
    with pytest.raises(PredictorError):
        RidgeRegressor(alpha=-1.0)
    with pytest.raises(PredictorError):
        DecisionTreeRegressor(max_depth=0)
    with pytest.raises(PredictorError):
        GradientBoostingRegressor(learning_rate=0.0)
    with pytest.raises(PredictorError):
        KernelRidgeRegressor(alpha=0.0)
    with pytest.raises(PredictorError):
        KNNRegressor(k=0)
    with pytest.raises(PredictorError):
        BayesianRidgeRegressor(max_iter=0)


def test_fit_validation():
    model = LinearRegressor()
    with pytest.raises(PredictorError):
        model.fit(np.zeros((3,)), np.zeros(3))  # 1-D features
    with pytest.raises(PredictorError):
        model.fit(np.zeros((3, 2)), np.zeros(4))  # mismatched
    with pytest.raises(PredictorError):
        model.fit(np.zeros((0, 2)), np.zeros(0))  # empty


def test_constant_feature_column_handled():
    x, y = linear_data(n=80)
    x = np.hstack([x, np.ones((80, 1))])  # zero-variance column
    model = LinearRegressor().fit(x, y)
    assert np.isfinite(model.predict(x)).all()
