"""Static RNG hygiene: no global numpy RNG, no stdlib ``random`` in src.

Determinism (and the byte-identical parallel sweep) rests on every piece
of randomness flowing from an explicit seed — ``np.random.default_rng``
generators or :meth:`repro.runtime.Session.rng` streams.  The legacy
global-state APIs (``np.random.seed`` / ``np.random.rand`` / the stdlib
``random`` module) would silently couple unrelated subsystems through
shared hidden state, so this test greps the source tree and fails on any
use outside the allowed construction surface.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"

# The explicit-seed construction surface; everything else on np.random is
# the legacy global-state API.
ALLOWED_NP_RANDOM = {"default_rng", "Generator", "SeedSequence", "PCG64"}

NP_RANDOM = re.compile(r"\bnp\.random\.(\w+)|\bnumpy\.random\.(\w+)")
STDLIB_RANDOM = re.compile(
    r"^\s*(?:import\s+random\b|from\s+random\s+import\b)", re.MULTILINE,
)


def _source_files():
    files = sorted(SRC.rglob("*.py"))
    assert files, f"no sources under {SRC}"
    return files


def test_no_global_numpy_rng_in_src():
    offenders = []
    for path in _source_files():
        for match in NP_RANDOM.finditer(path.read_text()):
            attr = match.group(1) or match.group(2)
            if attr not in ALLOWED_NP_RANDOM:
                offenders.append(f"{path.relative_to(SRC)}: np.random.{attr}")
    assert not offenders, (
        "global numpy RNG use (seed all randomness explicitly via "
        "default_rng or Session.rng):\n" + "\n".join(offenders)
    )


def test_no_stdlib_random_in_src():
    offenders = [
        str(path.relative_to(SRC))
        for path in _source_files()
        if STDLIB_RANDOM.search(path.read_text())
    ]
    assert not offenders, (
        "stdlib `random` imported (use seeded numpy generators):\n"
        + "\n".join(offenders)
    )


# ----------------------------------------------------------------------
# Runtime hygiene of the replica-batched trainer: its randomness flows
# only through the Session's named replica streams.
# ----------------------------------------------------------------------
def _fleet_graph():
    from repro.graphs.generators import dc_sbm_graph

    return dc_sbm_graph(
        200, 3, 8.0, random_state=0, feature_dim=10, intra_ratio=0.9,
    )


def test_train_replicas_leaves_global_numpy_rng_untouched():
    import numpy as np

    from repro.gcn.batched import ReplicaSpec, train_replicas
    from repro.runtime import Session

    graph = _fleet_graph()
    before = np.random.get_state()[1].copy()
    train_replicas(
        [
            ReplicaSpec(graph=graph, task="link", epochs=3, random_state=s)
            for s in range(3)
        ],
        session=Session(), min_batch=1,
    )
    after = np.random.get_state()[1]
    assert (before == after).all(), (
        "replica-batched training advanced the legacy global numpy RNG"
    )


def test_replica_stream_positions_match_serial_trainers():
    # After a batched run, every registered replica stream must sit at
    # the exact position its serial counterpart's generator ends at —
    # the strongest evidence the batched path drew the same values in
    # the same order.
    import numpy as np

    from repro.gcn.batched import ReplicaSpec, train_replicas
    from repro.gcn.trainer import make_trainer
    from repro.runtime import Session

    graph = _fleet_graph()
    seeds = (0, 1, 2, 5)
    for task in ("node", "link"):
        session = Session()
        train_replicas(
            [
                ReplicaSpec(
                    graph=graph, task=task, epochs=4, random_state=s,
                )
                for s in seeds
            ],
            session=session, min_batch=1,
        )
        for index, seed in enumerate(seeds):
            trainer = make_trainer(graph, task, random_state=seed)
            trainer.train(epochs=4)
            streams = session.replica_streams
            batched_trainer = streams[f"replica{index}/trainer"]
            batched_model = streams[f"replica{index}/model"]
            assert (
                batched_trainer.bit_generator.state
                == trainer._rng.bit_generator.state
            ), f"{task} replica {index}: trainer stream position diverged"
            assert (
                batched_model.bit_generator.state
                == trainer.model._rng.bit_generator.state
            ), f"{task} replica {index}: model stream position diverged"
