"""Static RNG hygiene: no global numpy RNG, no stdlib ``random`` in src.

Determinism (and the byte-identical parallel sweep) rests on every piece
of randomness flowing from an explicit seed — ``np.random.default_rng``
generators or :meth:`repro.runtime.Session.rng` streams.  The legacy
global-state APIs (``np.random.seed`` / ``np.random.rand`` / the stdlib
``random`` module) would silently couple unrelated subsystems through
shared hidden state, so this test greps the source tree and fails on any
use outside the allowed construction surface.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"

# The explicit-seed construction surface; everything else on np.random is
# the legacy global-state API.
ALLOWED_NP_RANDOM = {"default_rng", "Generator", "SeedSequence", "PCG64"}

NP_RANDOM = re.compile(r"\bnp\.random\.(\w+)|\bnumpy\.random\.(\w+)")
STDLIB_RANDOM = re.compile(
    r"^\s*(?:import\s+random\b|from\s+random\s+import\b)", re.MULTILINE,
)


def _source_files():
    files = sorted(SRC.rglob("*.py"))
    assert files, f"no sources under {SRC}"
    return files


def test_no_global_numpy_rng_in_src():
    offenders = []
    for path in _source_files():
        for match in NP_RANDOM.finditer(path.read_text()):
            attr = match.group(1) or match.group(2)
            if attr not in ALLOWED_NP_RANDOM:
                offenders.append(f"{path.relative_to(SRC)}: np.random.{attr}")
    assert not offenders, (
        "global numpy RNG use (seed all randomness explicitly via "
        "default_rng or Session.rng):\n" + "\n".join(offenders)
    )


def test_no_stdlib_random_in_src():
    offenders = [
        str(path.relative_to(SRC))
        for path in _source_files()
        if STDLIB_RANDOM.search(path.read_text())
    ]
    assert not offenders, (
        "stdlib `random` imported (use seeded numpy generators):\n"
        + "\n".join(offenders)
    )
