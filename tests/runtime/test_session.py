"""RunSpec/Session semantics: hashing, resolution, determinism."""

import json

import pytest

from repro.errors import ConfigError, ExperimentError
from repro.perf.cache import ArtifactCache
from repro.runtime import (
    EXPERIMENT_ARRAY_BYTES,
    RunSpec,
    Session,
    stream_seed,
)


def _rows_bytes(result):
    return json.dumps(result.rows, sort_keys=True, default=str).encode()


class TestRunSpec:
    def test_defaults_and_hash_stability(self):
        a, b = RunSpec(), RunSpec()
        assert a == b
        assert a.spec_hash() == b.spec_hash()
        assert a.array_bytes == EXPERIMENT_ARRAY_BYTES

    def test_hash_changes_with_any_field(self):
        base = RunSpec().spec_hash()
        assert RunSpec(seed=1).spec_hash() != base
        assert RunSpec(dataset="cora").spec_hash() != base
        assert RunSpec(scale=0.5).spec_hash() != base
        assert RunSpec(hardware=(("weight_bits", 8),)).spec_hash() != base

    def test_hardware_overrides_normalised(self):
        a = RunSpec(hardware={"weight_bits": 8, "crossbar_rows": 128})
        b = RunSpec(hardware=(("crossbar_rows", 128), ("weight_bits", 8)))
        assert a == b
        config = a.resolve_config()
        assert config.weight_bits == 8
        assert config.crossbar_rows == 128
        assert config.array_capacity_bytes == EXPERIMENT_ARRAY_BYTES

    def test_unknown_hardware_field_rejected(self):
        with pytest.raises(ConfigError):
            RunSpec(hardware={"not_a_field": 1})

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError):
            RunSpec(seed=-1)
        with pytest.raises(ConfigError):
            RunSpec(micro_batch=0)
        with pytest.raises(ConfigError):
            RunSpec(scale=0.0)

    def test_dict_round_trip(self):
        spec = RunSpec(
            dataset="ddi", seed=3, scale=0.5,
            hardware={"weight_bits": 8}, accelerator="gopim",
        )
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()
        # to_dict is JSON-serialisable as-is (worker task payloads).
        json.dumps(spec.to_dict())

    def test_with_derives_variants(self):
        spec = RunSpec(dataset="ddi")
        assert spec.with_(seed=7).seed == 7
        assert spec.with_(seed=7).dataset == "ddi"
        assert spec.with_() == spec


class TestStreams:
    def test_stream_seed_stable_and_distinct(self):
        assert stream_seed(0, "noise") == stream_seed(0, "noise")
        assert stream_seed(0, "noise") != stream_seed(0, "init")
        assert stream_seed(0, "noise") != stream_seed(1, "noise")
        assert 0 <= stream_seed(0, "noise") < 2 ** 32

    def test_session_streams_independent(self):
        session = Session()
        a = session.rng("noise").standard_normal(4)
        b = session.rng("noise").standard_normal(4)
        assert a.tolist() == b.tolist()  # fresh generator per call
        c = session.rng("init").standard_normal(4)
        assert a.tolist() != c.tolist()


class TestSessionArtifacts:
    def test_workload_requires_dataset(self):
        with pytest.raises(ExperimentError):
            Session().workload()

    def test_spec_dataset_is_the_default(self):
        session = Session(RunSpec(dataset="cora"))
        assert session.workload().name == session.workload("cora").name

    def test_provenance_block_shape(self):
        session = Session(RunSpec(dataset="cora", seed=2))
        prov = session.provenance()
        assert prov["spec_hash"] == session.spec.spec_hash()
        assert prov["run_spec"]["dataset"] == "cora"
        assert prov["config_fingerprint"] == session.config_fingerprint()


class TestDeterminism:
    """Same spec => byte-identical rows, however the caches are primed."""

    SPEC = RunSpec(seed=0)
    KWARGS = {"datasets": ("ddi",)}

    def _run(self, session):
        from repro.experiments.registry import run_experiment

        return run_experiment("fig06", session=session, **self.KWARGS)

    def test_cold_vs_warm_cache(self):
        session = Session(self.SPEC, cache=ArtifactCache())
        cold = self._run(session)     # empty cache: everything computed
        warm = self._run(session)     # same session: everything cached
        assert _rows_bytes(cold) == _rows_bytes(warm)

    def test_two_fresh_sessions_agree(self):
        a = self._run(Session(self.SPEC, cache=ArtifactCache()))
        b = self._run(Session(self.SPEC, cache=ArtifactCache()))
        assert _rows_bytes(a) == _rows_bytes(b)

    def test_provenance_stamp_matches_session(self):
        session = Session(self.SPEC, cache=ArtifactCache())
        result = session.stamp(self._run(session), "fig06")
        prov = result.metadata["provenance"]
        assert prov["spec_hash"] == self.SPEC.spec_hash()
        assert prov["experiment_id"] == "fig06"
