"""Arrival-process properties: unit mean, monotonicity, burstiness."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.serving.arrivals import (
    arrival_times_ns,
    unit_mmpp,
    unit_poisson,
    unit_trace,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestUnitPatterns:
    def test_poisson_unit_mean_in_expectation(self):
        inter = unit_poisson(200_000, rng())
        assert inter.shape == (200_000,)
        assert np.all(inter >= 0)
        assert inter.mean() == pytest.approx(1.0, rel=0.01)

    def test_mmpp_exact_unit_mean(self):
        inter = unit_mmpp(50_000, rng())
        assert inter.shape == (50_000,)
        assert np.all(inter >= 0)
        assert inter.mean() == pytest.approx(1.0, abs=1e-12)

    def test_trace_exact_unit_mean_and_deterministic(self):
        a = unit_trace(10_000)
        b = unit_trace(10_000)
        assert np.array_equal(a, b)
        assert a.mean() == pytest.approx(1.0, abs=1e-12)

    def test_mmpp_is_burstier_than_poisson(self):
        # Coefficient of variation: ~1 for exponential gaps, higher for
        # the phase-modulated process.
        po = unit_poisson(100_000, rng(1))
        mm = unit_mmpp(100_000, rng(1))
        cv_po = po.std() / po.mean()
        cv_mm = mm.std() / mm.mean()
        assert cv_po == pytest.approx(1.0, rel=0.02)
        assert cv_mm > cv_po * 1.1

    def test_mmpp_deterministic_per_seed(self):
        a = unit_mmpp(5_000, rng(7))
        b = unit_mmpp(5_000, rng(7))
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            unit_poisson(0, rng())
        with pytest.raises(ExperimentError):
            unit_mmpp(100, rng(), burstiness=1.0)
        with pytest.raises(ExperimentError):
            unit_mmpp(100, rng(), phase_length=0.0)
        with pytest.raises(ExperimentError):
            unit_trace(100, trace=(1.0, -1.0))


class TestRateScaling:
    def test_timestamps_are_nondecreasing_int64(self):
        times = arrival_times_ns(unit_poisson(10_000, rng()), 1e6)
        assert times.dtype == np.int64
        assert np.all(np.diff(times) >= 0)

    def test_rate_sets_mean_gap(self):
        times = arrival_times_ns(unit_poisson(100_000, rng()), 2e6)
        mean_gap = np.diff(times).mean()
        assert mean_gap == pytest.approx(500.0, rel=0.02)  # 1/2e6 s

    def test_same_pattern_scales_proportionally(self):
        # The load-sweep contract: one pattern, different compressions.
        pattern = unit_mmpp(10_000, rng(3))
        slow = arrival_times_ns(pattern, 1e6)
        fast = arrival_times_ns(pattern, 2e6)
        assert slow[-1] > fast[-1]
        ratio = slow[-1] / fast[-1]
        assert ratio == pytest.approx(2.0, rel=0.001)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            arrival_times_ns(np.ones(10), 0.0)
        with pytest.raises(ExperimentError):
            arrival_times_ns(np.array([1.0, -0.5]), 1e6)
