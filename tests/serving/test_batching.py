"""Batch-formation invariants across the three trigger policies."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.serving.arrivals import arrival_times_ns, unit_mmpp
from repro.serving.batching import BatchingPolicy, BatchPlan, form_batches


@pytest.fixture(scope="module")
def arrivals():
    pattern = unit_mmpp(20_000, np.random.default_rng(0))
    return arrival_times_ns(pattern, 1e6)  # mean gap 1000 ns


POLICIES = [
    BatchingPolicy("size", max_batch=64),
    BatchingPolicy("timeout", timeout_ns=5_000),
    BatchingPolicy("hybrid", max_batch=64, timeout_ns=5_000),
    BatchingPolicy("hybrid", max_batch=8, timeout_ns=100_000),
]


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.label())
class TestInvariants:
    def test_partition_is_exact(self, arrivals, policy):
        plan = form_batches(arrivals, policy)
        assert plan.num_requests == arrivals.size
        assert plan.boundaries[0] == 0
        assert plan.boundaries[-1] == arrivals.size
        assert np.all(np.diff(plan.boundaries) >= 1)
        assert plan.sizes().sum() == arrivals.size

    def test_dispatch_not_before_last_member(self, arrivals, policy):
        plan = form_batches(arrivals, policy)
        last = arrivals[plan.boundaries[1:] - 1]
        assert np.all(plan.dispatch_ns >= last)

    def test_dispatch_nondecreasing(self, arrivals, policy):
        plan = form_batches(arrivals, policy)
        assert np.all(np.diff(plan.dispatch_ns) >= 0)

    def test_batch_of_request_matches_boundaries(self, arrivals, policy):
        plan = form_batches(arrivals, policy)
        owner = plan.batch_of_request()
        assert owner.shape == (arrivals.size,)
        for k in (0, plan.num_batches // 2, plan.num_batches - 1):
            lo, hi = plan.boundaries[k], plan.boundaries[k + 1]
            assert np.all(owner[lo:hi] == k)


class TestPolicySemantics:
    def test_size_batches_are_full(self, arrivals):
        plan = form_batches(arrivals, BatchingPolicy("size", max_batch=64))
        sizes = plan.sizes()
        assert np.all(sizes[:-1] == 64)
        assert sizes[-1] <= 64

    def test_size_and_hybrid_respect_cap(self, arrivals):
        for kind in ("size", "hybrid"):
            policy = BatchingPolicy(kind, max_batch=32, timeout_ns=10_000)
            assert form_batches(arrivals, policy).sizes().max() <= 32

    def test_timeout_bounds_formation_wait(self, arrivals):
        timeout = 5_000
        policy = BatchingPolicy("timeout", timeout_ns=timeout)
        plan = form_batches(arrivals, policy)
        first = arrivals[plan.boundaries[:-1]]
        assert np.all(plan.dispatch_ns == first + timeout)

    def test_hybrid_dispatches_early_when_full(self):
        # 100 back-to-back arrivals, huge timeout: the size trigger must
        # fire and dispatch at the 10th member's arrival, not the flush.
        arrivals = np.arange(100, dtype=np.int64)
        policy = BatchingPolicy(
            "hybrid", max_batch=10, timeout_ns=10_000_000,
        )
        plan = form_batches(arrivals, policy)
        assert plan.num_batches == 10
        assert np.all(plan.sizes() == 10)
        assert np.all(plan.dispatch_ns == arrivals[9::10])

    def test_hybrid_flushes_partial_on_timeout(self):
        # Two bursts separated by far more than the timeout.
        arrivals = np.array([0, 10, 20, 1_000_000], dtype=np.int64)
        policy = BatchingPolicy("hybrid", max_batch=64, timeout_ns=500)
        plan = form_batches(arrivals, policy)
        assert plan.num_batches == 2
        assert list(plan.sizes()) == [3, 1]
        assert plan.dispatch_ns[0] == 500

    def test_validation(self):
        with pytest.raises(ExperimentError):
            BatchingPolicy("fifo")
        with pytest.raises(ExperimentError):
            BatchingPolicy("size", max_batch=0)
        with pytest.raises(ExperimentError):
            BatchingPolicy("timeout", timeout_ns=0)
        with pytest.raises(ExperimentError):
            form_batches(
                np.array([5, 1], dtype=np.int64), BatchingPolicy("size"),
            )
        with pytest.raises(ExperimentError):
            BatchPlan(
                boundaries=np.array([0, 2, 2]),
                dispatch_ns=np.array([10, 20]),
            )
