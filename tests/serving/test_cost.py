"""Provisioning and batch-cost properties of the serving cost model."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.runtime import RunSpec, Session
from repro.serving.cost import build_serving_system


@pytest.fixture(scope="module")
def session():
    return Session(RunSpec(seed=0))


@pytest.fixture(scope="module")
def system(session):
    return build_serving_system(session, "ddi", num_servers=4, max_batch=64)


def test_forward_chain_only(system):
    # Inference runs CO_l, AG_l per layer — no gradient stages.
    assert all(
        name.startswith(("CO", "AG")) for name in system.stage_names
    )
    assert system.num_stages == len(system.stage_names)
    assert system.num_stages % 2 == 0


def test_allocation_fits_per_server_budget(session, system):
    total = session.config.total_crossbars
    per_server = total // system.num_servers
    used = int((system.replicas * system.crossbars_per_replica).sum())
    assert np.all(system.replicas >= 1)
    assert used <= per_server
    assert system.num_servers * used <= total


def test_capacity_positive_and_consistent(system):
    assert system.capacity_rps > 0
    expected = (
        system.num_servers * system.max_batch * 1e9
        / system.full_batch_time_ns()
    )
    assert system.capacity_rps == pytest.approx(expected)


def test_server_count_capped_by_chip(session):
    generous = build_serving_system(session, "ddi", num_servers=10_000)
    assert 1 <= generous.num_servers <= 10_000
    single = build_serving_system(session, "ddi", num_servers=1)
    assert single.num_servers == 1


def test_batch_times_scale_with_work(system):
    # Timeout batching can form batches far beyond max_batch, so the
    # cost model must handle sizes past the replica count too.
    sizes = np.array([16, 16, 256], dtype=np.int64)
    edges = np.array([100, 400, 1600], dtype=np.int64)
    times = system.batch_times_ns(sizes, edges)
    assert times.shape == (system.num_stages, 3)
    assert times.dtype == np.int64
    assert np.all(times >= 0)
    edge_rows = np.flatnonzero(system.is_edge_stage)
    node_rows = np.flatnonzero(~system.is_edge_stage)
    # Edge stages saturate their replicas well before these edge counts,
    # so more edges means proportionally more time.
    assert np.all(times[edge_rows, 1] > times[edge_rows, 0])
    # Node-stage replicas cap at the batch size: below the replica count
    # batches finish in constant time, beyond it time grows.
    assert np.all(times[node_rows, 1] == times[node_rows, 0])
    assert np.all(times[node_rows, 2] > times[node_rows, 0])


def test_validation(session):
    with pytest.raises(ConfigError):
        build_serving_system(session, "ddi", num_servers=0)
    with pytest.raises(ConfigError):
        build_serving_system(session, "ddi", max_batch=0)
