"""Byte-identity gate: batched timeline engine vs the scalar event loop.

Same contract as the pipeline/functional/allocator fast paths, but
stricter: the serving engines run integer-nanosecond arithmetic, so the
comparison is exact equality of every array — no tolerances anywhere.
"""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.runtime import RunSpec, Session
from repro.serving import (
    ServingSpec,
    run_serving,
    simulate_serving,
    simulate_serving_reference,
)


def identical(a, b):
    assert a.balancer == b.balancer
    assert a.num_servers == b.num_servers
    assert np.array_equal(a.assignment, b.assignment)
    assert np.array_equal(a.starts, b.starts)
    assert np.array_equal(a.ends, b.ends)


def random_case(seed, num_stages, num_batches):
    rng = np.random.default_rng(seed)
    gaps = rng.integers(0, 5_000, num_batches)
    dispatch = np.cumsum(gaps).astype(np.int64)
    times = rng.integers(
        0, 10_000, (num_stages, num_batches),
    ).astype(np.int64)
    return dispatch, times


@pytest.mark.parametrize("balancer", ["rr", "jsq"])
@pytest.mark.parametrize("num_servers", [1, 3, 8])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_timelines_byte_identical(balancer, num_servers, seed):
    dispatch, times = random_case(seed, num_stages=4, num_batches=500)
    fast = simulate_serving(dispatch, times, num_servers, balancer)
    ref = simulate_serving_reference(dispatch, times, num_servers, balancer)
    identical(fast, ref)


@pytest.mark.parametrize("balancer", ["rr", "jsq"])
def test_degenerate_shapes(balancer):
    # One batch, one server; and zero service times (pure pass-through).
    one = simulate_serving(
        np.array([5], dtype=np.int64),
        np.array([[3], [4]], dtype=np.int64),
        1, balancer,
    )
    assert one.completions_ns[0] == 12
    dispatch, _ = random_case(9, 2, 50)
    zeros = np.zeros((2, 50), dtype=np.int64)
    fast = simulate_serving(dispatch, zeros, 2, balancer)
    ref = simulate_serving_reference(dispatch, zeros, 2, balancer)
    identical(fast, ref)
    assert np.array_equal(fast.completions_ns, dispatch)


def test_simultaneous_dispatches_tie_break():
    # Equal dispatch times force the JSQ tie rule (lowest index first).
    dispatch = np.zeros(12, dtype=np.int64)
    times = np.full((2, 12), 100, dtype=np.int64)
    fast = simulate_serving(dispatch, times, 4, "jsq")
    ref = simulate_serving_reference(dispatch, times, 4, "jsq")
    identical(fast, ref)
    # First four batches must land on servers 0..3 in order.
    assert list(fast.assignment[:4]) == [0, 1, 2, 3]


def test_validation():
    dispatch, times = random_case(0, 2, 10)
    with pytest.raises(ExperimentError):
        simulate_serving(dispatch, times, 0)
    with pytest.raises(ExperimentError):
        simulate_serving(dispatch, times, 2, "random")
    with pytest.raises(ExperimentError):
        simulate_serving(dispatch[:-1], times, 2)
    with pytest.raises(ExperimentError):
        simulate_serving(dispatch[::-1].copy(), times, 2)


@pytest.fixture(scope="module")
def session():
    return Session(RunSpec(seed=0))


@pytest.mark.parametrize("process", ["poisson", "mmpp"])
@pytest.mark.parametrize("balancer", ["rr", "jsq"])
def test_end_to_end_byte_identical(session, process, balancer):
    # The acceptance gate: full run_serving path, both arrival processes.
    spec = ServingSpec(
        dataset="ddi",
        num_requests=8_000,
        process=process,
        load=0.9,
        balancer=balancer,
    )
    fast = run_serving(session, spec, engine="fast")
    ref = run_serving(session, spec, engine="reference")
    identical(fast.timeline, ref.timeline)
    assert fast.stats == ref.stats
