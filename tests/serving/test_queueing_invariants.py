"""Queueing-theoretic invariants and cross-session determinism."""

import numpy as np
import pytest

from repro.experiments import srv_tail_latency
from repro.perf.cache import ArtifactCache
from repro.runtime import RunSpec, Session
from repro.serving import ServingSpec, queue_depth_curve, run_serving


@pytest.fixture(scope="module")
def session():
    return Session(RunSpec(seed=0))


@pytest.fixture(scope="module")
def base_spec():
    return ServingSpec(dataset="ddi", num_requests=20_000, process="mmpp")


def test_schedule_respects_all_constraints(session, base_spec):
    run = run_serving(session, base_spec)
    timeline, plan = run.timeline, run.plan
    # Release: no batch starts stage 0 before its dispatch.
    assert np.all(timeline.starts[0] >= plan.dispatch_ns)
    # Precedence: stage s starts after the same batch leaves stage s-1.
    for s in range(1, timeline.num_stages):
        assert np.all(timeline.starts[s] >= timeline.ends[s - 1])
    # Exclusivity: per (server, stage), busy intervals never overlap.
    for server in range(timeline.num_servers):
        mine = timeline.assignment == server
        for s in range(timeline.num_stages):
            starts = timeline.starts[s, mine]
            ends = timeline.ends[s, mine]
            assert np.all(starts[1:] >= ends[:-1])


def test_littles_law(session, base_spec):
    """L = lambda_eff * W, with L integrated from the event curve.

    The time-average number in system is computed independently by
    integrating the +1/-1 arrival/completion step curve, then compared
    to the stats' rate x mean-latency product.
    """
    run = run_serving(session, base_spec)
    arrivals = run.arrivals_ns
    completions = run.timeline.completions_ns[run.plan.batch_of_request()]

    events = np.concatenate([arrivals, completions])
    deltas = np.concatenate([
        np.ones(arrivals.size), -np.ones(completions.size),
    ])
    order = np.argsort(events, kind="stable")
    events, deltas = events[order], deltas[order]
    depth = np.cumsum(deltas)
    # Integrate depth over [first event, last event].
    integral = float((depth[:-1] * np.diff(events)).sum())
    horizon = float(events[-1] - events[0])
    l_integrated = integral / horizon

    lam = arrivals.size / horizon          # requests per ns
    w = float(
        (completions - arrivals).sum(dtype=np.int64)
    ) / arrivals.size                      # mean latency in ns
    assert l_integrated == pytest.approx(lam * w, rel=1e-9)
    # And the stats' own mean queue depth agrees (it uses horizon from
    # t=0, a hair longer than first-event-to-last, hence the tolerance).
    assert run.stats.mean_queue_depth == pytest.approx(
        l_integrated, rel=0.01,
    )


@pytest.mark.parametrize("process", ["poisson", "mmpp"])
def test_queueing_p99_monotone_in_load(session, process):
    """p99 of the queueing latency (dispatch -> completion) vs load.

    A load sweep replays one unit arrival pattern, so batch memberships
    and service times are identical across loads and only the dispatch
    spacing compresses — queueing delay can then only grow with load.
    (End-to-end latency also carries the batch-formation wait, which
    *shrinks* with load; the sum is U-shaped, not monotone.)
    """
    spec = ServingSpec(dataset="ddi", num_requests=30_000, process=process)
    loads = (0.4, 0.6, 0.8, 0.95, 1.1)
    p99s = []
    end_to_end = []
    for load in loads:
        run = run_serving(session, spec.at_load(load))
        owner = run.plan.batch_of_request()
        queueing = np.sort(
            run.timeline.completions_ns[owner]
            - run.plan.dispatch_ns[owner]
        )
        p99s.append(int(queueing[int(np.ceil(0.99 * queueing.size)) - 1]))
        end_to_end.append(run.stats.latency_p99_ns)
    assert p99s == sorted(p99s)
    assert p99s[-1] > p99s[0]  # saturation actually hurts
    # End-to-end tail latency still blows up past saturation.
    assert end_to_end[-1] > 2 * end_to_end[0]


def test_saturation_caps_throughput(session):
    spec = ServingSpec(dataset="ddi", num_requests=30_000)
    sub = run_serving(session, spec.at_load(0.6)).stats
    over = run_serving(session, spec.at_load(1.5)).stats
    # Below capacity the system keeps up (the ~50us final-flush timeout
    # and drain stretch the horizon a few percent); far above it the
    # achieved rate decouples from the offered rate.
    assert sub.achieved_rps == pytest.approx(sub.offered_rps, rel=0.10)
    assert over.achieved_rps < 0.85 * over.offered_rps
    assert over.mean_queue_depth > 2 * sub.mean_queue_depth


def test_queue_depth_curve_brackets(session, base_spec):
    run = run_serving(session, base_spec)
    completions = run.timeline.completions_ns[run.plan.batch_of_request()]
    curve = queue_depth_curve(run.arrivals_ns, completions, points=32)
    assert curve.shape == (32,)
    assert np.all(curve >= 0)
    assert curve[-1] == 0  # everything drains by the last completion


def test_fresh_sessions_identical_rows():
    """Same RunSpec => same spec hash => byte-identical result rows."""
    results = []
    for _ in range(2):
        session = Session(RunSpec(seed=0), cache=ArtifactCache())
        result = srv_tail_latency.run(
            num_requests=6_000,
            loads=(0.6, 0.9),
            processes=("poisson", "mmpp"),
            session=session,
        )
        session.stamp(result, "srv_tail_latency")
        results.append(result)
    first, second = results
    assert first.rows == second.rows
    assert (
        first.metadata["provenance"]["spec_hash"]
        == second.metadata["provenance"]["spec_hash"]
    )


def test_experiment_rows_shape(session):
    result = srv_tail_latency.run(
        num_requests=4_000,
        loads=(0.5, 0.9),
        processes=("poisson",),
        session=session,
    )
    assert len(result.rows) == 2
    for row in result.rows:
        assert row["requests"] == 4_000
        assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
