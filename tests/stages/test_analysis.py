"""Stage-profiling analysis (Section III motivation quantities)."""

import pytest

from repro.stages.analysis import (
    aggregation_combination_ratios,
    profile_stages,
    update_time_share,
)
from repro.stages.latency import StageTimingModel


@pytest.fixture
def timing(small_workload):
    return StageTimingModel(small_workload)


def test_profiles_cover_all_stages(timing, small_workload):
    profiles = profile_stages(timing)
    assert [p.name for p in profiles] == [
        s.name for s in small_workload.stage_chain()
    ]
    for p in profiles:
        assert p.min_ns <= p.mean_ns <= p.max_ns
        assert p.compute_share + p.write_share == pytest.approx(1.0)
        assert p.skew >= 1.0


def test_ag_dominates_in_ratios(timing):
    ratios = aggregation_combination_ratios(timing)
    assert set(ratios) == {1, 2}
    assert all(r > 1.0 for r in ratios.values())


def test_update_share_in_range(timing):
    share = update_time_share(timing)
    assert 0.0 < share < 1.0


def test_write_share_zero_for_gc(timing):
    profiles = {p.name: p for p in profile_stages(timing)}
    assert profiles["GC1"].write_share == 0.0
    assert profiles["AG1"].write_share > 0.0
