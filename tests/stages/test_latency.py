"""Analytic latency model: serialisation structure, replicas, writes."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.hardware.config import DEFAULT_CONFIG
from repro.mapping.selective import build_update_plan
from repro.stages.latency import StageTimingModel, TimingParams
from repro.stages.stage import StageKind
from repro.stages.workload import Workload


@pytest.fixture
def timing(small_workload):
    return StageTimingModel(small_workload)


def _stage(timing, name):
    return next(s for s in timing.stages if s.name == name)


def test_co_time_formula(timing, small_workload):
    cfg = DEFAULT_CONFIG
    co1 = _stage(timing, "CO1")
    b = small_workload.microbatch_size(0)
    row_tiles = -(-co1.input_dim // cfg.crossbar_rows)
    expected = (
        b * row_tiles * cfg.mvm_latency_ns
        + timing.write_time_ns(co1, 0)
    )
    assert timing.microbatch_time_ns(co1, 0, 1) == pytest.approx(expected)


def test_ag_time_edge_proportional(timing, small_workload):
    cfg = DEFAULT_CONFIG
    ag1 = _stage(timing, "AG1")
    t0 = timing.compute_time_ns(ag1, 0, 1)
    edges0 = small_workload.microbatch_edges(0)
    # Dominant term is edges x mvm latency.
    assert t0 >= edges0 * cfg.mvm_latency_ns
    # Different micro-batches with different degree sums cost differently.
    times = [
        timing.compute_time_ns(ag1, mb, 1)
        for mb in range(small_workload.num_microbatches)
    ]
    edges = [
        small_workload.microbatch_edges(mb)
        for mb in range(small_workload.num_microbatches)
    ]
    order_t = np.argsort(times[:-1])  # last mb may be ragged
    order_e = np.argsort(edges[:-1])
    np.testing.assert_array_equal(order_t, order_e)


def test_ag_dominates_co(timing):
    # The paper's headline observation: AG stage times dwarf CO's.
    co = timing.mean_stage_time_ns(_stage(timing, "CO1"))
    ag = timing.mean_stage_time_ns(_stage(timing, "AG1"))
    assert ag > 3 * co


def test_replicas_divide_compute(timing):
    ag1 = _stage(timing, "AG1")
    t1 = timing.compute_time_ns(ag1, 0, 1)
    t4 = timing.compute_time_ns(ag1, 0, 4)
    assert t4 == pytest.approx(t1 / 4)


def test_replica_cap_row_stages(timing, small_workload):
    co1 = _stage(timing, "CO1")
    b = small_workload.micro_batch
    capped = timing.compute_time_ns(co1, 0, b)
    beyond = timing.compute_time_ns(co1, 0, 10 * b)
    assert capped == pytest.approx(beyond)
    assert timing.max_useful_replicas(co1) == b


def test_replica_cap_edge_stages(timing, small_workload):
    ag1 = _stage(timing, "AG1")
    cap = timing.max_useful_replicas(ag1)
    assert cap == int(small_workload.average_microbatch_edges())
    assert cap > small_workload.micro_batch  # Table VI's AG >> CO replicas


def test_writes_not_reduced_by_replicas(timing):
    ag1 = _stage(timing, "AG1")
    assert timing.write_time_ns(ag1, 0) == pytest.approx(
        timing.microbatch_time_ns(ag1, 0, 10 ** 9)
        - timing.compute_time_ns(ag1, 0, 10 ** 9),
    )


def test_isu_reduces_write_time(small_workload):
    full = StageTimingModel(small_workload)
    isu_plan = build_update_plan(small_workload.graph, "isu", theta=0.5)
    isu = StageTimingModel(small_workload, update_plan=isu_plan)
    ag1_full = _stage(full, "AG1")
    ag1_isu = _stage(isu, "AG1")
    total_full = sum(
        full.write_time_ns(ag1_full, mb)
        for mb in range(small_workload.num_microbatches)
    )
    total_isu = sum(
        isu.write_time_ns(ag1_isu, mb)
        for mb in range(small_workload.num_microbatches)
    )
    assert total_isu < 0.6 * total_full


def test_gc_and_lc_write_free(timing):
    assert timing.write_time_ns(_stage(timing, "GC1"), 0) == 0.0
    assert timing.write_time_ns(_stage(timing, "LC1"), 0) == 0.0


def test_reload_penalty_only_for_edge_stages(small_workload):
    reflip = StageTimingModel(
        small_workload, params=TimingParams(reload_penalty=1.0),
    )
    ag1 = _stage(reflip, "AG1")
    co1 = _stage(reflip, "CO1")
    edges = small_workload.microbatch_edges(0)
    assert reflip.reload_time_ns(ag1, 0) == pytest.approx(
        edges * DEFAULT_CONFIG.row_write_latency_ns,
    )
    assert reflip.reload_time_ns(co1, 0) == 0.0


def test_intrinsic_edge_parallelism(small_workload):
    plain = StageTimingModel(small_workload)
    fast = StageTimingModel(
        small_workload, params=TimingParams(intrinsic_edge_parallelism=8),
    )
    ag1 = _stage(plain, "AG1")
    assert fast.compute_time_ns(ag1, 0, 1) == pytest.approx(
        plain.compute_time_ns(ag1, 0, 1) / 8,
    )


def test_crossbars_per_replica(timing):
    # CO1 maps 16x32 values -> 1 row tile x 1 col tile.
    assert timing.crossbars_per_replica(_stage(timing, "CO1")) == 1
    # AG1 maps 200x32 -> 4 row tiles x 1 col tile.
    assert timing.crossbars_per_replica(_stage(timing, "AG1")) == 4


def test_no_replica_times_keys(timing):
    times = timing.no_replica_times()
    assert set(times) == {s.name for s in timing.stages}
    assert all(t > 0 for t in times.values())


def test_activity_counts(timing, small_workload):
    ag1 = _stage(timing, "AG1")
    act = timing.activity(ag1, 0)
    assert act.mvm_row_streams == small_workload.microbatch_edges(0)
    assert act.rows_written > 0
    assert act.buffer_bytes > 0
    co1 = _stage(timing, "CO1")
    act_co = timing.activity(co1, 0)
    assert act_co.mvm_row_streams == small_workload.microbatch_size(0) * 1


def test_invalid_replicas(timing):
    with pytest.raises(PipelineError):
        timing.compute_time_ns(_stage(timing, "CO1"), 0, 0)


def test_timing_params_validation():
    with pytest.raises(PipelineError):
        TimingParams(scan_group_tiles=0)
    with pytest.raises(PipelineError):
        TimingParams(write_pulses=0)
    with pytest.raises(PipelineError):
        TimingParams(reload_penalty=-1.0)
    with pytest.raises(PipelineError):
        TimingParams(intrinsic_edge_parallelism=0)
