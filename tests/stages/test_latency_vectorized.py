"""Vectorized timing tables vs the scalar per-micro-batch methods.

``StageTimingModel`` gained whole-epoch vector methods
(``compute_times_ns`` / ``write_times_ns`` / ``reload_times_ns`` /
``stage_time_matrix`` / ``stage_activity_totals``); the scalar
per-(stage, micro-batch) methods remain the reference semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import dc_sbm_graph
from repro.mapping.selective import build_update_plan
from repro.predictor.profiler import (
    profile_stage_times,
    profile_stage_times_reference,
)
from repro.stages.latency import StageTimingModel, TimingParams
from repro.stages.workload import Workload


def _timing_model(strategy: str, reload_penalty: float = 0.0,
                  micro_batch: int = 24) -> StageTimingModel:
    graph = dc_sbm_graph(
        num_vertices=100, num_communities=3, avg_degree=7.0,
        random_state=4, name="latvec",
    )
    # 100 vertices / micro_batch 24 leaves a partial last micro-batch.
    workload = Workload(
        graph=graph, layer_dims=[(16, 32), (32, 8)],
        micro_batch=micro_batch,
    )
    plan = build_update_plan(graph, strategy=strategy)
    params = TimingParams(reload_penalty=reload_penalty)
    return StageTimingModel(workload, params=params, update_plan=plan)


@pytest.mark.parametrize("strategy", ["full", "osu", "isu"])
@pytest.mark.parametrize("replicas", [1, 3])
def test_vector_times_match_scalar(strategy, replicas):
    timing = _timing_model(strategy, reload_penalty=0.3)
    num_mbs = timing.workload.num_microbatches
    for stage in timing.stages:
        expect_c = [timing.compute_time_ns(stage, mb, replicas)
                    for mb in range(num_mbs)]
        expect_w = [timing.write_time_ns(stage, mb)
                    for mb in range(num_mbs)]
        expect_r = [timing.reload_time_ns(stage, mb)
                    for mb in range(num_mbs)]
        np.testing.assert_allclose(
            timing.compute_times_ns(stage, replicas), expect_c, rtol=1e-12,
        )
        np.testing.assert_allclose(
            timing.write_times_ns(stage), expect_w, rtol=1e-12,
        )
        np.testing.assert_allclose(
            timing.reload_times_ns(stage), expect_r, rtol=1e-12,
        )
        np.testing.assert_allclose(
            timing.microbatch_times_ns(stage, replicas),
            [timing.microbatch_time_ns(stage, mb, replicas)
             for mb in range(num_mbs)],
            rtol=1e-12,
        )


@pytest.mark.parametrize("strategy", ["full", "isu"])
def test_stage_time_matrix_matches_scalar_grid(strategy):
    timing = _timing_model(strategy)
    stages = timing.stages
    replicas = np.arange(1, len(stages) + 1)
    matrix = timing.stage_time_matrix(replicas)
    assert matrix.shape == (len(stages), timing.workload.num_microbatches)
    for i, stage in enumerate(stages):
        np.testing.assert_allclose(
            matrix[i],
            [timing.microbatch_time_ns(stage, mb, int(replicas[i]))
             for mb in range(timing.workload.num_microbatches)],
            rtol=1e-12,
        )
    # replicas=None means one replica everywhere.
    np.testing.assert_allclose(
        timing.stage_time_matrix(), timing.stage_time_matrix(
            np.ones(len(stages), dtype=np.int64),
        ),
    )


@pytest.mark.parametrize("strategy", ["full", "osu", "isu"])
def test_activity_totals_match_scalar_sum(strategy):
    timing = _timing_model(strategy)
    num_mbs = timing.workload.num_microbatches
    for stage in timing.stages:
        total = timing.stage_activity_totals(stage)
        acts = [timing.activity(stage, mb) for mb in range(num_mbs)]
        assert total.mvm_row_streams == sum(a.mvm_row_streams for a in acts)
        assert total.rows_written == sum(a.rows_written for a in acts)
        assert total.buffer_bytes == pytest.approx(
            sum(a.buffer_bytes for a in acts), rel=1e-12,
        )
        assert total.offchip_bytes == pytest.approx(
            sum(a.offchip_bytes for a in acts), rel=1e-12,
        )


def test_profiler_matches_reference():
    timing = _timing_model("isu", reload_penalty=0.2)
    fast = profile_stage_times(timing, epochs=3)
    slow = profile_stage_times_reference(timing, epochs=3)
    assert fast.stage_times_ns.keys() == slow.stage_times_ns.keys()
    for name, value in slow.stage_times_ns.items():
        assert fast.stage_times_ns[name] == pytest.approx(value, rel=1e-12)
    assert fast.overhead_ns == pytest.approx(slow.overhead_ns, rel=1e-12)
