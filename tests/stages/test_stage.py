"""Stage chain construction (Fig. 2 / Fig. 10 semantics)."""

import pytest

from repro.errors import PipelineError
from repro.stages.stage import StageKind, build_stage_chain


def test_two_layer_chain_order():
    chain = build_stage_chain(100, [(16, 32), (32, 8)])
    names = [s.name for s in chain]
    assert names == ["CO1", "AG1", "CO2", "AG2", "LC2", "GC2", "LC1", "GC1"]
    assert [s.chain_index for s in chain] == list(range(8))


def test_chain_length_is_4l():
    for layers in (1, 2, 3, 5):
        dims = [(8, 8)] * layers
        assert len(build_stage_chain(10, dims)) == 4 * layers


def test_mapped_shapes():
    chain = build_stage_chain(100, [(16, 32), (32, 8)])
    by_name = {s.name: s for s in chain}
    assert (by_name["CO1"].mapped_rows, by_name["CO1"].mapped_cols) == (16, 32)
    assert (by_name["AG1"].mapped_rows, by_name["AG1"].mapped_cols) == (100, 32)
    assert (by_name["LC2"].mapped_rows, by_name["LC2"].mapped_cols) == (8, 32)
    assert (by_name["GC1"].mapped_rows, by_name["GC1"].mapped_cols) == (100, 16)


def test_stage_kind_flags():
    assert StageKind.AGGREGATION.is_edge_proportional
    assert StageKind.GRADIENT.is_edge_proportional
    assert not StageKind.COMBINATION.is_edge_proportional
    assert not StageKind.LOSS.is_edge_proportional
    assert StageKind.AGGREGATION.maps_vertex_features
    assert not StageKind.LOSS.maps_vertex_features


def test_input_dims():
    chain = build_stage_chain(50, [(16, 32)])
    by_name = {s.name: s for s in chain}
    assert by_name["CO1"].input_dim == 16
    assert by_name["AG1"].input_dim == 50
    assert by_name["LC1"].input_dim == 32


def test_validation():
    with pytest.raises(PipelineError):
        build_stage_chain(0, [(4, 4)])
    with pytest.raises(PipelineError):
        build_stage_chain(10, [])
    with pytest.raises(PipelineError):
        build_stage_chain(10, [(0, 4)])
