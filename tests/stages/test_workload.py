"""Workload: micro-batch partitioning, degree prefix sums, Table IV configs."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.graphs.datasets import get_spec
from repro.stages.workload import Workload, workload_from_dataset


def test_microbatch_partition(small_workload):
    wl = small_workload
    assert wl.num_microbatches == -(-wl.num_vertices // wl.micro_batch)
    covered = np.concatenate([
        wl.microbatch_vertices(i) for i in range(wl.num_microbatches)
    ])
    np.testing.assert_array_equal(covered, np.arange(wl.num_vertices))


def test_ragged_last_microbatch(small_graph):
    wl = Workload(small_graph, [(16, 8)], micro_batch=48)
    sizes = [wl.microbatch_size(i) for i in range(wl.num_microbatches)]
    assert sum(sizes) == wl.num_vertices
    assert sizes[-1] == wl.num_vertices - 48 * (wl.num_microbatches - 1)


def test_microbatch_edges_match_degrees(small_workload):
    wl = small_workload
    for i in range(wl.num_microbatches):
        vertices = wl.microbatch_vertices(i)
        assert wl.microbatch_edges(i) == wl.graph.degrees[vertices].sum()
    total = sum(wl.microbatch_edges(i) for i in range(wl.num_microbatches))
    assert total == wl.graph.num_arcs


def test_average_microbatch_edges(small_workload):
    wl = small_workload
    expected = wl.graph.num_arcs / wl.num_microbatches
    assert wl.average_microbatch_edges() == pytest.approx(expected)


def test_stage_chain_matches_dims(small_workload):
    chain = small_workload.stage_chain()
    assert len(chain) == small_workload.num_stages == 8


def test_out_of_range_microbatch(small_workload):
    with pytest.raises(PipelineError):
        small_workload.microbatch_range(small_workload.num_microbatches)


def test_validation(small_graph):
    with pytest.raises(PipelineError):
        Workload(small_graph, [], micro_batch=4)
    with pytest.raises(PipelineError):
        Workload(small_graph, [(4, 4)], micro_batch=0)


def test_workload_from_dataset_table_iv():
    wl = workload_from_dataset("arxiv", random_state=0)
    spec = get_spec("arxiv")
    assert wl.num_layers == spec.num_layers == 3
    assert wl.layer_dims[0] == (128, 256)
    assert wl.layer_dims[1] == (256, 256)
    assert wl.layer_dims[2] == (256, 40)
    assert wl.micro_batch == 64
    assert wl.name == "arxiv"


def test_workload_from_dataset_reuses_graph(small_graph):
    wl = workload_from_dataset("ddi", graph=small_graph)
    assert wl.graph is small_graph
    assert wl.layer_dims[0][0] == get_spec("ddi").in_channels
