"""CLI smoke tests (capture stdout, check structure)."""

import pytest

from repro.cli import build_parser, main


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    for name in ("ddi", "collab", "ppa", "proteins", "arxiv", "products",
                 "cora"):
        assert name in out
    assert "80%" in out  # cora's sparse theta


def test_area_command(capsys):
    assert main(["area"]) == 0
    out = capsys.readouterr().out
    assert "pe_mm2" in out and "tile_mm2" in out


def test_simulate_command(capsys):
    assert main(["simulate", "cora", "--micro-batch", "64"]) == 0
    out = capsys.readouterr().out
    assert "Serial" in out and "GoPIM" in out
    assert "speedup" in out


def test_gantt_command(capsys):
    assert main(["gantt", "cora", "--width", "40", "--serial"]) == 0
    out = capsys.readouterr().out
    assert "CO1" in out and "GC1" in out
    assert "bottleneck:" in out


def test_experiments_command(capsys):
    assert main(["experiments", "fig05"]) == 0
    out = capsys.readouterr().out
    assert "fig05" in out
    assert "| allocation |" in out


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    # Registry columns and both old and new experiment families.
    assert "id" in out and "cost" in out and "datasets" in out
    assert "fig13" in out
    for srv_id in ("srv_tail_latency", "srv_batching_policy",
                   "srv_saturation"):
        assert srv_id in out
    assert "Serving tail latency vs offered load" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_stats_command(capsys):
    assert main(["stats", "cora"]) == 0
    out = capsys.readouterr().out
    assert "average_degree" in out and "homophily" in out


def test_lifetime_command(capsys):
    assert main(["lifetime", "cora"]) == 0
    out = capsys.readouterr().out
    assert "ISU+leveling" in out
    assert "worst-row epochs" in out
