"""Error hierarchy: every subsystem error is a GoPIMError."""

import pytest

from repro import errors


@pytest.mark.parametrize("cls", [
    errors.ConfigError,
    errors.GraphError,
    errors.MappingError,
    errors.AllocationError,
    errors.PipelineError,
    errors.PredictorError,
    errors.TrainingError,
    errors.ExperimentError,
])
def test_all_errors_derive_from_base(cls):
    assert issubclass(cls, errors.GoPIMError)
    with pytest.raises(errors.GoPIMError):
        raise cls("boom")


def test_base_error_is_exception():
    assert issubclass(errors.GoPIMError, Exception)
