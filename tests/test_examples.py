"""Example scripts: import and drive each main() in-process.

Uses the session-level workload/predictor caches, so these are much
cheaper than running the scripts as subprocesses; argv is monkeypatched
to fast parameterisations.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    expected = {
        "quickstart.py", "compare_accelerators.py", "train_with_isu.py",
        "predictor_study.py", "pipeline_anatomy.py", "time_to_accuracy.py",
        "deploy_on_hardware.py",
    }
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert expected <= present


def test_quickstart_runs(capsys):
    module = _load("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "Speedup" in out and "energy saving" in out


def test_compare_accelerators_runs(capsys, monkeypatch):
    module = _load("compare_accelerators")
    monkeypatch.setattr(sys, "argv", ["compare_accelerators.py", "cora"])
    module.main()
    out = capsys.readouterr().out
    assert "GoPIM" in out and "Serial" in out and "speedup" in out


def test_train_with_isu_runs(capsys, monkeypatch):
    module = _load("train_with_isu")
    monkeypatch.setattr(sys, "argv", ["train_with_isu.py", "cora", "4"])
    module.main()
    out = capsys.readouterr().out
    assert "Accuracy impact of ISU" in out
    assert "ISU (interleaved)" in out


def test_pipeline_anatomy_runs(capsys, monkeypatch):
    module = _load("pipeline_anatomy")
    monkeypatch.setattr(sys, "argv", ["pipeline_anatomy.py", "cora", "40"])
    module.main()
    out = capsys.readouterr().out
    assert "bottleneck stage" in out
    assert "GoPIM end-to-end speedup" in out


def test_time_to_accuracy_runs(capsys, monkeypatch):
    module = _load("time_to_accuracy")
    monkeypatch.setattr(
        sys, "argv", ["time_to_accuracy.py", "cora", "4", "0.3"],
    )
    module.main()
    out = capsys.readouterr().out
    assert "time to target" in out


def test_deploy_on_hardware_runs(capsys, monkeypatch):
    module = _load("deploy_on_hardware")
    monkeypatch.setattr(
        sys, "argv", ["deploy_on_hardware.py", "64", "10"],
    )
    module.main()
    out = capsys.readouterr().out
    assert "hardware deployments" in out
    assert "checkpoint round-trip" in out
