"""Cross-cutting property-based invariants (hypothesis).

These complement the per-module suites with system-level invariants:
monotonicity laws the models must obey regardless of parameters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.greedy import greedy_allocation
from repro.allocation.problem import AllocationProblem
from repro.graphs.generators import dc_sbm_graph
from repro.hardware.energy import EnergyBreakdown
from repro.mapping.selective import build_update_plan
from repro.pipeline.simulator import ScheduleMode, simulate_pipeline
from repro.stages.latency import StageTimingModel
from repro.stages.workload import Workload


# ----------------------------------------------------------------------
# Pipeline monotonicity: increasing any stage time never shrinks the
# makespan, under any schedule.
# ----------------------------------------------------------------------
@given(
    seed=st.integers(0, 1000),
    mode=st.sampled_from(list(ScheduleMode)),
)
@settings(max_examples=40, deadline=None)
def test_pipeline_monotone_in_stage_times(seed, mode):
    rng = np.random.default_rng(seed)
    times = rng.uniform(0.1, 5.0, size=(3, 6))
    base = simulate_pipeline(times, mode).total_time_ns
    bumped = times.copy()
    i = rng.integers(0, 3)
    j = rng.integers(0, 6)
    bumped[i, j] += rng.uniform(0.1, 3.0)
    assert simulate_pipeline(bumped, mode).total_time_ns >= base - 1e-9


# ----------------------------------------------------------------------
# Allocator monotonicity: a larger budget never yields a worse makespan.
# ----------------------------------------------------------------------
@given(
    seed=st.integers(0, 500),
    budget=st.integers(0, 60),
    extra=st.integers(1, 60),
)
@settings(max_examples=40, deadline=None)
def test_greedy_monotone_in_budget(seed, budget, extra):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 6))
    problem_small = AllocationProblem(
        stage_names=[f"S{i}" for i in range(n)],
        times_ns=rng.uniform(1.0, 50.0, size=n),
        crossbars_per_replica=rng.integers(1, 5, size=n),
        budget=budget,
        replica_caps=rng.integers(2, 16, size=n),
        num_microbatches=int(rng.integers(1, 8)),
    )
    problem_big = AllocationProblem(
        stage_names=problem_small.stage_names,
        times_ns=problem_small.times_ns,
        crossbars_per_replica=problem_small.crossbars_per_replica,
        budget=budget + extra,
        replica_caps=problem_small.replica_caps,
        num_microbatches=problem_small.num_microbatches,
    )
    small = greedy_allocation(problem_small).makespan_ns
    big = greedy_allocation(problem_big).makespan_ns
    assert big <= small + 1e-9


# ----------------------------------------------------------------------
# Latency model: compute time is non-increasing in the replica count.
# ----------------------------------------------------------------------
@given(replicas=st.integers(1, 200), more=st.integers(1, 200))
@settings(max_examples=30, deadline=None)
def test_compute_time_monotone_in_replicas(replicas, more):
    graph = dc_sbm_graph(96, 2, 6.0, random_state=0, feature_dim=8)
    workload = Workload(graph, [(8, 8)], micro_batch=16)
    timing = StageTimingModel(workload)
    for stage in timing.stages:
        t1 = timing.compute_time_ns(stage, 0, replicas)
        t2 = timing.compute_time_ns(stage, 0, replicas + more)
        assert t2 <= t1 + 1e-9


# ----------------------------------------------------------------------
# Selective updating: write cycles are non-decreasing in theta, and the
# rows written per epoch scale with theta.
# ----------------------------------------------------------------------
@given(
    theta_low=st.floats(0.05, 0.5),
    delta=st.floats(0.05, 0.5),
)
@settings(max_examples=25, deadline=None)
def test_isu_write_cycles_monotone_in_theta(theta_low, delta):
    graph = dc_sbm_graph(256, 2, 8.0, random_state=1)
    low = build_update_plan(graph, "isu", theta=theta_low)
    high = build_update_plan(graph, "isu", theta=min(1.0, theta_low + delta))
    assert high.average_write_cycles() >= low.average_write_cycles() - 1e-9
    assert high.rows_written_per_epoch() >= low.rows_written_per_epoch() - 1e-9


# ----------------------------------------------------------------------
# Energy breakdown algebra: merge is associative and total is additive.
# ----------------------------------------------------------------------
@given(
    values=st.lists(
        st.tuples(*[st.floats(0, 1e6) for _ in range(7)]),
        min_size=1, max_size=5,
    ),
)
@settings(max_examples=40, deadline=None)
def test_energy_merge_additive(values):
    def make(v):
        return EnergyBreakdown(*v)

    total = EnergyBreakdown()
    for v in values:
        total.merge(make(v))
    expected = sum(sum(v) for v in values)
    assert total.total_pj == pytest.approx(expected, rel=1e-9)


# ----------------------------------------------------------------------
# Workload partition: micro-batch edges always sum to the arc count,
# for any micro-batch size.
# ----------------------------------------------------------------------
@given(micro_batch=st.integers(1, 300), seed=st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_microbatch_edge_partition(micro_batch, seed):
    graph = dc_sbm_graph(120, 2, 5.0, random_state=seed)
    workload = Workload(graph, [(4, 4)], micro_batch=micro_batch)
    total = sum(
        workload.microbatch_edges(i)
        for i in range(workload.num_microbatches)
    )
    assert total == graph.num_arcs
