"""Unit-system helpers: conversions, the mW x ns = pJ identity, formatting."""

import pytest

from repro import units


def test_time_conversions_roundtrip():
    assert units.ns_to_us(1500.0) == 1.5
    assert units.ns_to_ms(2_500_000.0) == 2.5
    assert units.ns_to_s(3_000_000_000.0) == 3.0
    assert units.s_to_ns(2.0) == 2_000_000_000.0


def test_energy_conversions():
    assert units.pj_to_nj(1500.0) == 1.5
    assert units.pj_to_uj(2_000_000.0) == 2.0
    assert units.pj_to_j(5e12) == 5.0


def test_mw_times_ns_is_pj_identity():
    # 1 mW for 1 ns is exactly 1 pJ in SI; the unit system relies on it.
    assert units.energy_pj(1.0, 1.0) == 1.0
    assert units.energy_pj(6.2, 29.31) == pytest.approx(181.722)


def test_energy_pj_rejects_negative():
    with pytest.raises(ValueError):
        units.energy_pj(-1.0, 5.0)
    with pytest.raises(ValueError):
        units.energy_pj(1.0, -5.0)


@pytest.mark.parametrize("value,expected", [
    (1.0, "1.00 ns"),
    (1500.0, "1.50 us"),
    (2_500_000.0, "2.50 ms"),
    (3_100_000_000.0, "3.10 s"),
])
def test_format_time(value, expected):
    assert units.format_time(value) == expected


@pytest.mark.parametrize("value,expected", [
    (1.0, "1.00 pJ"),
    (1500.0, "1.50 nJ"),
    (2_500_000.0, "2.50 uJ"),
    (3_100_000_000.0, "3.10 mJ"),
    (4.2e12, "4.20 J"),
])
def test_format_energy(value, expected):
    assert units.format_energy(value) == expected


def test_format_rejects_negative():
    with pytest.raises(ValueError):
        units.format_time(-1.0)
    with pytest.raises(ValueError):
        units.format_energy(-1.0)
